package hyperion

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/keys"
)

// TestPreprocessPreservesLeadingByte is the foundation of the arena-routing
// invariant: arenaFor routes by the RAW leading byte while the trees store
// transformed keys, which is only sound because the pre-processing
// transformation copies the leading byte verbatim for every possible value.
func TestPreprocessPreservesLeadingByte(t *testing.T) {
	for b := 0; b < 256; b++ {
		for _, tail := range [][]byte{nil, {0x01}, {0xaa, 0xbb, 0xcc}, {1, 2, 3, 4, 5, 6, 7}} {
			key := append([]byte{byte(b)}, tail...)
			p := keys.Preprocess(key)
			if len(p) == 0 || p[0] != byte(b) {
				t.Fatalf("Preprocess(%x) = %x: leading byte not preserved", key, p)
			}
		}
	}
}

// TestShardRoutingInvariantUnderPreprocessing proves that with key
// pre-processing enabled, routing the raw key and routing the transformed
// key select the same arena — so every arena really covers a contiguous
// transformed-key range and cross-arena iteration order is sound.
func TestShardRoutingInvariantUnderPreprocessing(t *testing.T) {
	for _, arenas := range []int{2, 3, 7, 16, 256} {
		s := New(Options{Arenas: arenas, KeyPreprocessing: true, EmbeddedEjectThreshold: 8 * 1024})
		rng := rand.New(rand.NewSource(int64(arenas)))
		for i := 0; i < 4096; i++ {
			key := make([]byte, 8)
			rng.Read(key)
			key[0] = byte(i) // cover every leading byte, hence every boundary
			if got, want := s.arenaIndex(keys.Preprocess(key)), s.arenaIndex(key); got != want {
				t.Fatalf("arenas=%d key=%x: raw routes to %d, transformed to %d", arenas, key, want, got)
			}
		}
	}
}

// TestRangeOrderAcrossArenaBoundariesPreprocessed is the end-to-end
// regression test: keys dense around every arena boundary, stored with
// KeyPreprocessing in many arenas, must come back from Range/Each/ParallelEach
// in exact global lexicographic order of the RAW keys.
func TestRangeOrderAcrossArenaBoundariesPreprocessed(t *testing.T) {
	for _, arenas := range []int{4, 16, 256} {
		s := New(Options{Arenas: arenas, KeyPreprocessing: true, BatchWorkers: 4, EmbeddedEjectThreshold: 8 * 1024})
		rng := rand.New(rand.NewSource(31))
		seen := map[string]bool{}
		var want []string
		insert := func(key []byte) {
			s.Put(key, uint64(len(want)))
			if !seen[string(key)] {
				seen[string(key)] = true
				want = append(want, string(key))
			}
		}
		// Every leading byte (so every arena boundary is crossed), with
		// random 7-byte tails; all keys >= 4 bytes, as the pre-processing
		// ordering contract requires.
		for lead := 0; lead < 256; lead++ {
			for j := 0; j < 8; j++ {
				key := make([]byte, 8)
				rng.Read(key)
				key[0] = byte(lead)
				insert(key)
			}
			// Extremal tails right at the boundary byte.
			insert([]byte{byte(lead), 0, 0, 0})
			insert([]byte{byte(lead), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
		}
		sort.Strings(want)

		collect := func(iter func(fn func([]byte, uint64) bool)) []string {
			var got []string
			iter(func(k []byte, _ uint64) bool {
				got = append(got, string(k))
				return true
			})
			return got
		}
		for name, got := range map[string][]string{
			"Each":         collect(s.Each),
			"ParallelEach": collect(s.ParallelEach),
		} {
			if len(got) != len(want) {
				t.Fatalf("arenas=%d %s: visited %d keys, want %d", arenas, name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("arenas=%d %s: order mismatch at %d: %x, want %x", arenas, name, i, got[i], want[i])
				}
			}
		}
		// Bounded range starting exactly at an arena boundary key.
		start := want[len(want)/3]
		var bounded []string
		s.Range([]byte(start), func(k []byte, _ uint64) bool {
			bounded = append(bounded, string(k))
			return len(bounded) < 1000
		})
		for i := range bounded {
			if bounded[i] != want[len(want)/3+i] {
				t.Fatalf("arenas=%d bounded range mismatch at %d: %x, want %x", arenas, i, bounded[i], want[len(want)/3+i])
			}
		}
	}
}
