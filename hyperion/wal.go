package hyperion

// Write-ahead logging and crash-consistent recovery: the durable-apply stage
// between the public write API and the arenas.
//
// A store opened through Open with Options.WALDir set logs every mutation to
// a per-shard append-only segment log (internal/wal) BEFORE applying it to
// the arena trie. The enqueue happens under the shard write lock, so the
// per-key order in the log is exactly the order mutations hit the tree; the
// fsync happens after the lock is released, through the log's group-commit
// committer, so durability never serialises writers on the disk. Under
// SyncAlways every write-path call returns only after its record is fsynced
// — riding one group commit together with every concurrently acknowledged
// write — while SyncInterval and SyncNever trade a bounded window of recent
// writes for hot-path speed.
//
// Recovery (Open) is "load newest snapshot, replay the WAL tail through the
// bulk-ingest fast path": the checkpoint snapshot (checkpoint.hyp in the WAL
// directory) is loaded first, then each shard's surviving segments are
// replayed with last-op-wins per-key deduplication and the net result is fed
// through BulkLoad/PutKey/Delete. A torn or corrupt tail of the newest
// segment is truncated cleanly (a crash legitimately leaves one); the same
// damage anywhere else surfaces wal.ErrCorruptWAL — never a panic, never
// silently invented data.
//
// Checkpoint invariant: Checkpoint rotates every shard's log (so records
// enqueued before it live in segments strictly below a per-shard boundary),
// writes the snapshot atomically, and only then deletes the pre-boundary
// segments, oldest first. Every crash window is covered:
//
//   - before the snapshot rename: the old snapshot plus the full log replay
//     to the current state (rotation only added a segment boundary);
//   - after the rename, before/during segment deletion: the new snapshot
//     plus a *suffix* of the log (oldest-first deletion guarantees the
//     survivors are a suffix). The snapshot is per-key consistent at a point
//     at or after the boundary, and replaying any log suffix that starts at
//     or before a key's snapshot state re-applies that key's final
//     operations — last-op-wins makes the replay converge to the pre-crash
//     state.
//
// Record payloads are sequences of operations:
//
//	kind byte (1=put, 2=putkey, 3=delete, 4=clear)
//	uvarint key length, key bytes (raw, un-preprocessed)   [not for clear]
//	uvarint value                                          [put only]
//
// Keys are logged raw (like snapshots): replay re-applies the configured key
// transformation, so a WAL is portable across stores with the same routing.

import (
	"bytes"
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"time"

	"repro/internal/wal"
)

// SyncPolicy selects when WAL records are fsynced; see the wal package. The
// zero value is SyncAlways.
type SyncPolicy = wal.SyncPolicy

// Re-exported fsync policies (Options.WALSync).
const (
	SyncAlways   = wal.SyncAlways
	SyncInterval = wal.SyncInterval
	SyncNever    = wal.SyncNever
)

// ErrCorruptWAL is the typed mid-log corruption error; see wal.ErrCorruptWAL.
var ErrCorruptWAL = wal.ErrCorruptWAL

// ErrNoWAL is returned by Checkpoint on a store without a write-ahead log.
var ErrNoWAL = errors.New("hyperion: no write-ahead log configured")

// ErrDegraded is the typed write-rejection error of degraded read-only mode:
// a WAL failure exhausted its retry budget, so writes are refused before
// they touch memory while reads, scans and snapshots keep serving. Errors
// returned by WALError while degraded wrap both ErrDegraded and the root
// cause, so errors.Is can test for either. Rearm leaves the mode.
var ErrDegraded = errors.New("hyperion: WAL degraded, writes rejected (rearm to restore durability)")

// WALFile is the injectable segment-file surface (Options.WALOpenFile); see
// fault.File.
type WALFile = wal.File

// ErrWALArenaMismatch is returned by Open when the WAL directory was written
// by a store with a different arena count. Per-key log order is only defined
// within the shard routing that wrote the log, so the log cannot be replayed
// under a different routing. To change the arena count: open the store with
// the old count, call Checkpoint (which folds the log into the snapshot and
// truncates it), Close, and reopen with the new count.
var ErrWALArenaMismatch = errors.New("hyperion: WAL was written with a different arena count (checkpoint under the old count first)")

// CheckpointFileName is the snapshot file Open loads from (and Checkpoint
// writes into) the WAL directory.
const CheckpointFileName = "checkpoint.hyp"

// WAL op kinds (record payload encoding).
const (
	walOpPut    byte = 1
	walOpPutKey byte = 2
	walOpDelete byte = 3
	walOpClear  byte = 4
)

// walMaxChunk bounds one bulk-run record's payload so huge BulkLoads stream
// through the log in bounded memory.
const walMaxChunk = 1 << 20

// Open creates a store like New and, when Options.WALDir is set, makes it
// durable: it recovers the directory's previous state (newest checkpoint
// snapshot + WAL tail replay) and attaches per-shard write-ahead logs to the
// write path. A store returned by Open with a WAL MUST be Closed — Close
// quiesces writers, flushes and fsyncs the logs and releases the segment
// files; abandoning the store instead loses up to one sync window of writes
// under SyncInterval/SyncNever (never acknowledged SyncAlways writes).
//
// With an empty WALDir, Open is equivalent to New (and Close is a cheap
// no-op), so callers can use Open unconditionally and let configuration
// decide durability.
func Open(opts Options) (*Store, error) {
	opts = opts.normalized()
	if opts.WALDir == "" {
		return New(opts), nil
	}
	if err := os.MkdirAll(opts.WALDir, 0o755); err != nil {
		return nil, fmt.Errorf("hyperion: create WAL dir: %w", err)
	}
	var s *Store
	snap := filepath.Join(opts.WALDir, CheckpointFileName)
	if _, err := os.Stat(snap); err == nil {
		s, err = LoadFile(snap, opts)
		if err != nil {
			return nil, fmt.Errorf("hyperion: load checkpoint: %w", err)
		}
	} else if errors.Is(err, os.ErrNotExist) {
		s = New(opts)
	} else {
		return nil, fmt.Errorf("hyperion: stat checkpoint: %w", err)
	}
	if err := s.replayWAL(); err != nil {
		return nil, err
	}
	for i, sh := range s.shards {
		lg, err := wal.Open(wal.Options{
			Dir:          opts.WALDir,
			Shard:        i,
			Arenas:       len(s.shards),
			Policy:       opts.WALSync,
			Interval:     opts.WALSyncInterval,
			SegmentBytes: opts.WALSegmentBytes,
			Retry: wal.RetryPolicy{
				MaxRetries: opts.WALRetryMax,
				BaseDelay:  opts.WALRetryBackoff,
			},
			OpenFile: opts.WALOpenFile,
		})
		if err != nil {
			for _, prev := range s.shards[:i] {
				prev.wal.Close() //nolint:errsink unwinding a failed open; the open error is what the caller sees
			}
			return nil, err
		}
		sh.wal = lg
	}
	if opts.WALAutoRearm > 0 {
		s.autoRearmStop = make(chan struct{})
		go s.autoRearmLoop(opts.WALAutoRearm)
	}
	return s, nil
}

// replayWAL replays the WAL directory's surviving segments into the store
// (which holds the checkpoint snapshot state, or nothing). Replay is
// two-phase — decode and dedup everything first, apply second — so a corrupt
// log is detected before the store is touched.
func (s *Store) replayWAL() error {
	dir := s.opts.WALDir
	shardsOnDisk, err := wal.ListShards(dir)
	if err != nil {
		return err
	}
	if len(shardsOnDisk) == 0 {
		return nil
	}

	// Phase 1: per shard, reduce the tail to its net effect — the final
	// operation per key (shards never share keys, so per-shard tails compose)
	// plus whether a clear wiped the shard mid-tail. Records are collected
	// into a flat key arena and deduplicated by one sort (key, then arrival
	// order) instead of a per-key map: the map's hashing and per-key string
	// allocation dominated replay time, and the sort doubles as the ordering
	// BulkLoad needs anyway.
	type tailRec struct {
		off, n int // key bytes in keybuf
		idx    int // arrival order; the tie-break that makes last-op win
		kind   byte
		value  uint64
	}
	type shardTail struct {
		shard   int
		cleared bool
		keybuf  []byte
		recs    []tailRec
	}
	var tails []shardTail
	for _, shardID := range shardsOnDisk {
		if shardID >= len(s.shards) {
			// Segments from a store generation with more arenas. Harmless
			// only if they replay to nothing (a checkpoint under the old
			// count leaves one empty segment per shard); any surviving
			// record cannot be replayed under this routing.
			info, err := wal.Replay(dir, shardID, func([]byte) error { return nil })
			if err != nil {
				return err
			}
			if info.Records > 0 {
				return fmt.Errorf("%w: %d records exist for shard %d, store has %d arenas", ErrWALArenaMismatch, info.Records, shardID, len(s.shards))
			}
			if err := wal.RemoveShard(dir, shardID); err != nil {
				return err
			}
			continue
		}
		tail := shardTail{shard: shardID}
		info, err := wal.Replay(dir, shardID, func(payload []byte) error {
			for len(payload) > 0 {
				kind := payload[0]
				payload = payload[1:]
				if kind == walOpClear {
					tail.cleared = true
					tail.keybuf = tail.keybuf[:0]
					tail.recs = tail.recs[:0]
					continue
				}
				klen, n := binary.Uvarint(payload)
				if n <= 0 || uint64(len(payload)-n) < klen {
					return fmt.Errorf("%w: bad key length in record", ErrCorruptWAL)
				}
				key := payload[n : n+int(klen)]
				payload = payload[n+int(klen):]
				rec := tailRec{off: len(tail.keybuf), n: len(key), idx: len(tail.recs), kind: kind}
				switch kind {
				case walOpPut:
					v, n := binary.Uvarint(payload)
					if n <= 0 {
						return fmt.Errorf("%w: bad value in record", ErrCorruptWAL)
					}
					payload = payload[n:]
					rec.value = v
				case walOpPutKey, walOpDelete:
				default:
					return fmt.Errorf("%w: unknown op kind %d", ErrCorruptWAL, kind)
				}
				tail.keybuf = append(tail.keybuf, key...)
				tail.recs = append(tail.recs, rec)
			}
			return nil
		})
		if err != nil {
			return err
		}
		// Record-less segments (the empty tail a checkpoint under another
		// arena count leaves) impose no ordering and are ignored; any actual
		// record written under a different routing cannot be replayed.
		if info.Records > 0 && info.Arenas != len(s.shards) {
			return fmt.Errorf("%w: segments record %d arenas, store has %d", ErrWALArenaMismatch, info.Arenas, len(s.shards))
		}
		tails = append(tails, tail)
	}

	// Phase 2: apply. Clears first (they precede every surviving op of their
	// shard), then per shard sort the records by key with arrival order as the
	// tie-break and keep only the last record of each equal-key run — the same
	// last-op-wins reduction a map would compute, without its hashing or
	// per-key allocations. The surviving puts go through the bulk-ingest fast
	// path (one global sorted run, arenas loading in parallel), then the
	// stragglers. Keys alias each tail's arena; BulkLoad/PutKey/Delete copy
	// what they keep. No shard has a log attached yet, so nothing here is
	// re-logged.
	var pairs []Pair
	var putKeys, deletes [][]byte
	for ti := range tails {
		tail := &tails[ti]
		if tail.cleared {
			sh := s.shards[tail.shard]
			g := s.lockShardWrite(sh)
			sh.tree.Clear()
			s.unlockShardWrite(sh, g)
		}
		buf := tail.keybuf
		slices.SortFunc(tail.recs, func(a, b tailRec) int {
			if c := bytes.Compare(buf[a.off:a.off+a.n], buf[b.off:b.off+b.n]); c != 0 {
				return c
			}
			return cmp.Compare(a.idx, b.idx)
		})
		for i, rec := range tail.recs {
			if i+1 < len(tail.recs) {
				next := tail.recs[i+1]
				if bytes.Equal(buf[rec.off:rec.off+rec.n], buf[next.off:next.off+next.n]) {
					continue // a later op on the same key supersedes this one
				}
			}
			key := buf[rec.off : rec.off+rec.n]
			switch rec.kind {
			case walOpPut:
				pairs = append(pairs, Pair{Key: key, Value: rec.value})
			case walOpPutKey:
				putKeys = append(putKeys, key)
			case walOpDelete:
				deletes = append(deletes, key)
			}
		}
	}
	// Shards never share keys and each tail contributed a sorted run, so with
	// one shard this final pass is already-sorted (near free); with several it
	// merges the runs.
	slices.SortFunc(pairs, func(a, b Pair) int { return bytes.Compare(a.Key, b.Key) })
	s.BulkLoad(pairs)
	for _, k := range putKeys {
		s.PutKey(k)
	}
	for _, k := range deletes {
		s.Delete(k)
	}
	return nil
}

// WALEnabled reports whether the store has a write-ahead log attached.
func (s *Store) WALEnabled() bool { return s.opts.WALDir != "" && s.shards[0].wal != nil }

// WALError returns the store's sticky write-ahead log failure, or nil. The
// write API cannot change its signatures to return errors (the index.KV
// contract predates durability), so the failure is surfaced out of band:
// while it is set the store is in degraded read-only mode — reads, scans and
// snapshots keep serving, writes are rejected before they mutate memory —
// and the returned error wraps both ErrDegraded and the root cause. On a
// closed store the raw cause (usually wal.ErrClosed) is returned without the
// degraded wrapper: a closed store is closed, not degraded. Rearm clears the
// error.
func (s *Store) WALError() error {
	p := s.walErr.Load()
	if p == nil {
		return nil
	}
	if s.closed.Load() {
		return *p
	}
	return fmt.Errorf("%w: %w", ErrDegraded, *p)
}

// Degraded reports degraded read-only mode: a WAL failure is sticky and the
// store is still open, so writes are being rejected. See WALError.
func (s *Store) Degraded() bool {
	return s.walErr.Load() != nil && !s.closed.Load()
}

func (s *Store) noteWALErr(err error) {
	if err == nil {
		return
	}
	s.walErr.CompareAndSwap(nil, &err)
}

// Rearm attempts to leave degraded mode and re-establish durability: every
// shard's log abandons its suspect segment, rewrites the frames that were in
// flight when it failed into a fresh segment and fsyncs them; then the
// sticky error is lifted and the logs are folded into a fresh checkpoint.
// On a healthy store Rearm degenerates to a durability probe (forced group
// commit) plus a checkpoint. A checkpoint failure does not re-enter degraded
// mode by itself — at that point the logs are already healthy and cover
// everything — but it is surfaced so the caller can retry.
//
// Rearm is safe to call concurrently with reads and writes; concurrent Rearm
// calls serialise.
func (s *Store) Rearm() error {
	if !s.WALEnabled() {
		return ErrNoWAL
	}
	if s.closed.Load() {
		return wal.ErrClosed
	}
	s.rearmMu.Lock()
	defer s.rearmMu.Unlock()
	for _, sh := range s.shards {
		if err := sh.wal.Rearm(); err != nil {
			return err
		}
	}
	// Every shard's log accepts and persists records again: lift the sticky
	// error so writers resume.
	s.walErr.Store(nil)
	s.rearms.Add(1)
	if _, err := s.Checkpoint(); err != nil {
		return err
	}
	return nil
}

// autoRearmLoop probes a degraded store at the configured period until the
// store closes (Options.WALAutoRearm). A failed probe is deliberately
// dropped: the next tick retries, and the sticky WALError already tells
// operators what is wrong.
func (s *Store) autoRearmLoop(period time.Duration) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.autoRearmStop:
			return
		case <-t.C:
			if s.Degraded() {
				_ = s.Rearm()
			}
		}
	}
}

// WALStats is the durability subsystem's health snapshot, surfaced by the
// server HEALTH command and the CLI health subcommand.
type WALStats struct {
	Enabled  bool   // a write-ahead log is attached
	Degraded bool   // writes currently rejected (see ErrDegraded)
	Retries  uint64 // transient write/fsync failures retried by the committers
	Rearms   uint64 // successful Rearm recoveries
}

// WALStats returns the durability health snapshot. Safe for concurrent use.
func (s *Store) WALStats() WALStats {
	st := WALStats{Enabled: s.WALEnabled(), Degraded: s.Degraded(), Rearms: s.rearms.Load()}
	if st.Enabled {
		for _, sh := range s.shards {
			st.Retries += sh.wal.Stats().Retries
		}
	}
	return st
}

// Close makes the store's durable state final and releases its files:
// in-flight writers are quiesced (each shard's write lock is taken once),
// every per-shard log is flushed, fsynced and closed. Close is idempotent
// and returns the first WAL error encountered over the store's lifetime —
// a nil Close after SyncAlways writes means every acknowledged write is on
// disk. Writes issued after Close are rejected before mutating memory (the
// same fail-fast path as degraded mode) and leave the sticky ErrClosed in
// WALError. On a store without a WAL, Close only marks the store closed.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return s.WALError()
	}
	if s.autoRearmStop != nil {
		close(s.autoRearmStop)
	}
	for _, sh := range s.shards {
		sh.mu.Lock() // quiesce: no writer past this point enqueued before us
		//lint:ignore SA2001 empty critical section is the point: a barrier
		sh.mu.Unlock()
	}
	var first error
	for _, sh := range s.shards {
		if sh.wal == nil {
			continue
		}
		if err := sh.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.noteWALErr(first)
	return s.WALError()
}

// Checkpoint folds the write-ahead log into a fresh snapshot: it rotates
// every shard's log, writes the snapshot atomically to checkpoint.hyp in the
// WAL directory, and then deletes the pre-rotation segments (oldest first —
// see the crash-window analysis at the top of this file). It returns the
// number of keys in the snapshot. Checkpoint is safe to run while other
// goroutines read and write the store; concurrent writes land in the
// post-rotation segments and replay idempotently over the snapshot.
func (s *Store) Checkpoint() (int, error) {
	if !s.WALEnabled() {
		return 0, ErrNoWAL
	}
	boundaries := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		b, err := sh.wal.Rotate()
		if err != nil {
			s.noteWALErr(err)
			return 0, err
		}
		boundaries[i] = b
	}
	n, err := s.SaveFile(filepath.Join(s.opts.WALDir, CheckpointFileName))
	if err != nil {
		// The snapshot failed but no segment was deleted: the log still
		// covers everything and the store remains fully recoverable.
		return 0, err
	}
	for i, sh := range s.shards {
		if err := sh.wal.TruncateBefore(boundaries[i]); err != nil {
			// Leftover pre-boundary segments are a space leak, not a
			// correctness problem: replaying extra history under last-op-wins
			// converges to the same state. Surface the error anyway.
			return n, err
		}
	}
	return n, nil
}

// appendWalOp encodes one operation into a record payload.
func appendWalOp(dst []byte, kind byte, key []byte, value uint64) []byte {
	dst = append(dst, kind)
	if kind == walOpClear {
		return dst
	}
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	if kind == walOpPut {
		dst = binary.AppendUvarint(dst, value)
	}
	return dst
}

// walEnqueueOp logs one single-key operation. Called under the shard write
// lock (that is what serialises the log against the tree). The returned
// sequence is handed to walAwait after the lock is dropped; 0 means nothing
// to wait for (no WAL, or the enqueue failed and the error is sticky).
func (s *Store) walEnqueueOp(sh *shard, kind byte, key []byte, value uint64) uint64 {
	var scratch [opScratchSize + 2*binary.MaxVarintLen64 + 1]byte
	seq, err := sh.wal.Enqueue(appendWalOp(scratch[:0], kind, key, value))
	if err != nil {
		s.noteWALErr(err)
		return 0
	}
	return seq
}

// walEnqueueBatch logs the write ops of one shard group as a single record.
// opIdx nil means all of ops. Reads are skipped. Called under the shard
// write lock.
func (s *Store) walEnqueueBatch(sh *shard, ops []Op, opIdx []int32) uint64 {
	n := len(opIdx)
	if opIdx == nil {
		n = len(ops)
	}
	payload := make([]byte, 0, n*16)
	for k := 0; k < n; k++ {
		op := &ops[k]
		if opIdx != nil {
			op = &ops[opIdx[k]]
		}
		switch op.Kind {
		case OpPut:
			payload = appendWalOp(payload, walOpPut, op.Key, op.Value)
		case OpPutKey:
			payload = appendWalOp(payload, walOpPutKey, op.Key, 0)
		case OpDelete:
			payload = appendWalOp(payload, walOpDelete, op.Key, 0)
		}
	}
	if len(payload) == 0 {
		return 0
	}
	seq, err := sh.wal.Enqueue(payload)
	if err != nil {
		s.noteWALErr(err)
		return 0
	}
	return seq
}

// walEnqueuePairs logs a bulk run's pairs, chunked so one record payload
// stays under walMaxChunk. Called under the shard write lock; returns the
// last record's sequence plus how many pairs were actually logged. The two
// can disagree only when the log fails mid-run: earlier chunks are already
// enqueued, so the caller MUST still apply exactly the covered prefix to the
// tree — applying more (or less) would diverge memory from what the log
// replays after a rearm or restart.
func (s *Store) walEnqueuePairs(sh *shard, pairs []Pair) (last uint64, covered int) {
	payload := make([]byte, 0, min(len(pairs)*16, walMaxChunk+opScratchSize))
	for i := range pairs {
		payload = appendWalOp(payload, walOpPut, pairs[i].Key, pairs[i].Value)
		if len(payload) >= walMaxChunk {
			seq, err := sh.wal.Enqueue(payload)
			if err != nil {
				s.noteWALErr(err)
				return last, covered
			}
			last = seq
			covered = i + 1
			payload = payload[:0]
		}
	}
	if len(payload) > 0 {
		seq, err := sh.wal.Enqueue(payload)
		if err != nil {
			s.noteWALErr(err)
			return last, covered
		}
		last = seq
	}
	return last, len(pairs)
}

// walAwait applies the durability policy to a previously enqueued record:
// under SyncAlways it blocks until the record is fsynced. Called after the
// shard lock is released, so writers across shards (and writers of the same
// shard accumulated during an in-flight fsync) share group commits.
func (s *Store) walAwait(sh *shard, seq uint64) {
	if seq == 0 {
		return
	}
	if err := sh.wal.Commit(seq); err != nil {
		s.noteWALErr(err)
	}
}
