package hyperion

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

func walOptions(dir string, arenas int, policy SyncPolicy) Options {
	o := DefaultOptions()
	o.Arenas = arenas
	o.WALDir = dir
	o.WALSync = policy
	return o
}

// checkState asserts the store's content equals want (nil values = PutKey).
func checkState(t *testing.T, s *Store, want map[string]uint64, keyOnly map[string]bool) {
	t.Helper()
	if got := s.Len(); got != len(want)+len(keyOnly) {
		t.Fatalf("Len = %d, want %d", got, len(want)+len(keyOnly))
	}
	for k, v := range want {
		got, ok := s.Get([]byte(k))
		if !ok || got != v {
			t.Fatalf("Get(%q) = %d,%v want %d,true", k, got, ok, v)
		}
	}
	for k := range keyOnly {
		if !s.Has([]byte(k)) {
			t.Fatalf("Has(%q) = false, want true", k)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
}

func TestWALDurabilityRoundTrip(t *testing.T) {
	for _, arenas := range []int{1, 4} {
		for _, preprocess := range []bool{false, true} {
			t.Run(fmt.Sprintf("arenas=%d,preprocess=%v", arenas, preprocess), func(t *testing.T) {
				dir := t.TempDir()
				opts := walOptions(dir, arenas, SyncAlways)
				opts.KeyPreprocessing = preprocess
				s, err := Open(opts)
				if err != nil {
					t.Fatalf("Open: %v", err)
				}

				want := map[string]uint64{}
				keyOnly := map[string]bool{}
				// Every write path: Put, PutKey, Delete, ApplyBatch, BulkLoad.
				for i := 0; i < 200; i++ {
					k := fmt.Sprintf("putkey-%04d", i)
					s.Put([]byte(k), uint64(i))
					want[k] = uint64(i)
				}
				s.PutKey([]byte("bare-key"))
				keyOnly["bare-key"] = true
				s.Put([]byte("doomed"), 7)
				s.Delete([]byte("doomed"))
				var ops []Op
				for i := 0; i < 50; i++ {
					k := fmt.Sprintf("batch-%04d", i)
					ops = append(ops, Op{Kind: OpPut, Key: []byte(k), Value: uint64(1000 + i)})
					want[k] = uint64(1000 + i)
				}
				ops = append(ops, Op{Kind: OpGet, Key: []byte("putkey-0000")}) // reads are not logged
				ops = append(ops, Op{Kind: OpDelete, Key: []byte("putkey-0001")})
				delete(want, "putkey-0001")
				s.ApplyBatch(ops)
				var pairs []Pair
				for i := 0; i < 300; i++ {
					k := fmt.Sprintf("vulk-%06d", i)
					pairs = append(pairs, Pair{Key: []byte(k), Value: uint64(i * 3)})
					want[k] = uint64(i * 3)
				}
				s.BulkLoad(pairs)
				// Overwrite through a second path: last op wins after replay.
				s.Put([]byte("vulk-000000"), 999)
				want["vulk-000000"] = 999

				if err := s.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}
				r, err := Open(opts)
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				defer r.Close()
				checkState(t, r, want, keyOnly)
			})
		}
	}
}

func TestWALClearSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opts := walOptions(dir, 4, SyncAlways)
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("pre-%04d", i)), uint64(i))
	}
	s.Clear()
	s.Put([]byte("after"), 1)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	checkState(t, r, map[string]uint64{"after": 1}, nil)
}

func TestWALClearAfterCheckpoint(t *testing.T) {
	// A clear logged after a checkpoint must wipe the snapshot content too.
	dir := t.TempDir()
	opts := walOptions(dir, 2, SyncAlways)
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("snap-%04d", i)), uint64(i))
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	s.Clear()
	s.Put([]byte("post-clear"), 5)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	checkState(t, r, map[string]uint64{"post-clear": 5}, nil)
}

func TestWALCheckpointTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	opts := walOptions(dir, 2, SyncAlways)
	opts.WALSegmentBytes = 4 << 10
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := map[string]uint64{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%06d", i)
		s.Put([]byte(k), uint64(i))
		want[k] = uint64(i)
	}
	preFiles := countSegments(t, dir)
	n, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if n != len(want) {
		t.Fatalf("Checkpoint keys = %d, want %d", n, len(want))
	}
	postFiles := countSegments(t, dir)
	if postFiles >= preFiles {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d segments", preFiles, postFiles)
	}
	// Post-checkpoint writes land in the new tail.
	s.Put([]byte("tail"), 42)
	want["tail"] = 42
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	checkState(t, r, want, nil)
}

func countSegments(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg") {
			n++
		}
	}
	return n
}

func TestWALSyncIntervalAndNeverCloseFlushes(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			opts := walOptions(dir, 2, policy)
			opts.WALSyncInterval = 5 * time.Millisecond
			s, err := Open(opts)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			want := map[string]uint64{}
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k-%05d", i)
				s.Put([]byte(k), uint64(i))
				want[k] = uint64(i)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			r, err := Open(opts)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer r.Close()
			checkState(t, r, want, nil)
		})
	}
}

func TestWALArenaMismatchRejectedAndCheckpointMigrates(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(walOptions(dir, 4, SyncAlways))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := map[string]uint64{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%04d", i)
		s.Put([]byte(k), uint64(i))
		want[k] = uint64(i)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Opening with a different arena count must be rejected, not mis-replayed.
	if _, err := Open(walOptions(dir, 8, SyncAlways)); !errors.Is(err, ErrWALArenaMismatch) {
		t.Fatalf("Open with 8 arenas = %v, want ErrWALArenaMismatch", err)
	}
	// The documented migration: reopen with the old count, checkpoint (folds
	// the log into the snapshot and truncates it), close, reopen with the new.
	s, err = Open(walOptions(dir, 4, SyncAlways))
	if err != nil {
		t.Fatalf("reopen old count: %v", err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Note the snapshot itself is arena-agnostic (raw keys in global order).
	r, err := Open(walOptions(dir, 8, SyncAlways))
	if err != nil {
		t.Fatalf("Open with 8 arenas after checkpoint: %v", err)
	}
	checkState(t, r, want, nil)
	// Shrinking works the same way; the empty segments shards 4..7 left
	// behind are cleaned up, not treated as a mismatch.
	r.Put([]byte("wide"), 8)
	want["wide"] = 8
	if _, err := r.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint under 8 arenas: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	n, err := Open(walOptions(dir, 4, SyncAlways))
	if err != nil {
		t.Fatalf("Open with 4 arenas after checkpoint: %v", err)
	}
	defer n.Close()
	checkState(t, n, want, nil)
}

func TestWALCloseSemantics(t *testing.T) {
	dir := t.TempDir()
	opts := walOptions(dir, 2, SyncAlways)
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.Put([]byte("a"), 1)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	// Writes after Close mutate memory only and poison WALError.
	s.Put([]byte("b"), 2)
	if err := s.WALError(); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("WALError after post-Close write = %v, want wal.ErrClosed", err)
	}
	// A store without a WAL: Close is a cheap no-op.
	m, err := Open(DefaultOptions())
	if err != nil {
		t.Fatalf("Open without WAL: %v", err)
	}
	if m.WALEnabled() {
		t.Fatal("WALEnabled on memory-only store")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close memory-only store: %v", err)
	}
	if _, err := m.Checkpoint(); !errors.Is(err, ErrNoWAL) {
		t.Fatalf("Checkpoint without WAL = %v, want ErrNoWAL", err)
	}
}

// TestWALCorruptTailTruncates mirrors the snapshot corruption tests at the
// store level: damage to the newest segment recovers cleanly with the intact
// prefix, damage to an older segment is a typed error.
func TestWALCorruptTailTruncates(t *testing.T) {
	dir := t.TempDir()
	opts := walOptions(dir, 1, SyncAlways)
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 100; i++ {
		s.Put([]byte(fmt.Sprintf("key-%04d", i)), uint64(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip a byte near the end of the newest segment.
	segs := segmentPaths(t, dir)
	path := segs[len(segs)-1]
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-5] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(opts)
	if err != nil {
		t.Fatalf("Open with corrupt tail = %v, want clean truncation", err)
	}
	defer r.Close()
	// The prefix before the flipped record must be intact; nothing invented.
	if got := r.Len(); got < 90 || got > 100 {
		t.Fatalf("Len after tail truncation = %d, want 90..100", got)
	}
	for i := 0; i < r.Len(); i++ {
		k := fmt.Sprintf("key-%04d", i)
		if v, ok := r.Get([]byte(k)); !ok || v != uint64(i) {
			t.Fatalf("Get(%q) = %d,%v after truncation", k, v, ok)
		}
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatalf("CheckInvariants: %v", err)
	}
}

func TestWALCorruptMiddleSegmentIsTypedError(t *testing.T) {
	dir := t.TempDir()
	opts := walOptions(dir, 1, SyncAlways)
	opts.WALSegmentBytes = 2 << 10
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 500; i++ {
		s.Put([]byte(fmt.Sprintf("key-%04d", i)), uint64(i))
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := segmentPaths(t, dir)
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}
	b, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(segs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(opts); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("Open with mid-log corruption = %v, want ErrCorruptWAL", err)
	}
}

func segmentPaths(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}
