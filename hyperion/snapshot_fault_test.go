package hyperion

// Fault injection on the snapshot path, through the createSnapTemp seam: a
// SaveFile that runs out of disk (or fails its fsync) must surface the error,
// remove its temporary file, leave no partial file under the target name, and
// leave a pre-existing snapshot byte-for-byte intact and loadable.

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/fault"
)

// spliceSnapInjector routes every snapshot temp file of this test through in,
// restoring the production seam on cleanup.
func spliceSnapInjector(t *testing.T, in *fault.Injector) {
	t.Helper()
	orig := createSnapTemp
	createSnapTemp = func(dir, pattern string) (snapTemp, string, error) {
		f, name, err := orig(dir, pattern)
		if err != nil {
			return nil, "", err
		}
		return in.Wrap(f.(fault.File)), name, nil
	}
	t.Cleanup(func() { createSnapTemp = orig })
}

func listTempFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func TestSaveFileENOSPC(t *testing.T) {
	for _, tc := range []struct {
		name   string
		inject func(in *fault.Injector)
	}{
		{"write", func(in *fault.Injector) { in.FailWrites(-1, fault.ENOSPC()) }},
		{"sync", func(in *fault.Injector) { in.FailSyncs(-1, fault.ENOSPC()) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			target := filepath.Join(dir, "snap.hyp")
			s := New(DefaultOptions())
			defer s.Close() //nolint:errsink in-memory store teardown
			for i := 0; i < 100; i++ {
				s.Put([]byte{byte(i), byte(i >> 4), 'k'}, uint64(i)+7)
			}

			// A healthy save first: the failure below must not damage it.
			if _, err := s.SaveFile(target); err != nil {
				t.Fatalf("healthy SaveFile: %v", err)
			}
			before, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}

			var in fault.Injector
			spliceSnapInjector(t, &in)
			tc.inject(&in)
			s.Put([]byte("extra-key"), 1) // change the store so a rewrite would differ

			if _, err := s.SaveFile(target); !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("SaveFile under ENOSPC = %v, want ENOSPC surfaced", err)
			}
			if tmps := listTempFiles(t, dir); len(tmps) != 0 {
				t.Fatalf("failed save left temp files behind: %v", tmps)
			}
			after, err := os.ReadFile(target)
			if err != nil {
				t.Fatalf("existing snapshot unreadable after failed save: %v", err)
			}
			if !bytes.Equal(before, after) {
				t.Fatal("failed save modified the existing snapshot")
			}
			re, err := LoadFile(target, DefaultOptions())
			if err != nil {
				t.Fatalf("existing snapshot unloadable after failed save: %v", err)
			}
			defer re.Close() //nolint:errsink in-memory store teardown
			if re.Has([]byte("extra-key")) {
				t.Fatal("existing snapshot contains post-save state")
			}
			if v, ok := re.Get([]byte{3, 0, 'k'}); !ok || v != 10 {
				t.Fatalf("existing snapshot content damaged: %d,%v", v, ok)
			}

			// The fault gone, the same store saves fine — the seam does not
			// leave the path wedged.
			in.Heal()
			if _, err := s.SaveFile(target); err != nil {
				t.Fatalf("SaveFile after heal: %v", err)
			}
		})
	}
}

// TestSaveFileENOSPCFreshTarget: with no pre-existing snapshot, a failed save
// leaves nothing at all — no partial file under the target name, no temp.
func TestSaveFileENOSPCFreshTarget(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "snap.hyp")
	s := New(DefaultOptions())
	defer s.Close() //nolint:errsink in-memory store teardown
	s.Put([]byte("k"), 1)

	var in fault.Injector
	spliceSnapInjector(t, &in)
	in.FailWrites(-1, fault.ENOSPC())
	if _, err := s.SaveFile(target); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("SaveFile under ENOSPC = %v, want ENOSPC surfaced", err)
	}
	if _, err := os.Stat(target); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed save left a file under the target name: stat err=%v", err)
	}
	if tmps := listTempFiles(t, dir); len(tmps) != 0 {
		t.Fatalf("failed save left temp files behind: %v", tmps)
	}
}
