package hyperion

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func allOptionVariants() map[string]Options {
	return map[string]Options{
		"default":       DefaultOptions(),
		"integer":       IntegerOptions(),
		"preprocessed":  PreprocessedIntegerOptions(),
		"arenas-4":      {Arenas: 4, EmbeddedEjectThreshold: 16 * 1024},
		"arenas-256":    {Arenas: 256, EmbeddedEjectThreshold: 16 * 1024},
		"no-features":   {Arenas: 1, EmbeddedEjectThreshold: 16 * 1024, DisableDeltaEncoding: true, DisablePathCompression: true, DisableEmbedded: true, DisableJumpSuccessor: true, DisableJumpTables: true, DisableContainerSplit: true},
		"prep-arenas-8": {Arenas: 8, KeyPreprocessing: true, EmbeddedEjectThreshold: 8 * 1024},
	}
}

func TestStoreBasicOperations(t *testing.T) {
	for name, opts := range allOptionVariants() {
		t.Run(name, func(t *testing.T) {
			s := New(opts)
			s.Put([]byte("alpha"), 1)
			s.Put([]byte("beta"), 2)
			s.PutKey([]byte("gamma"))
			if v, ok := s.Get([]byte("alpha")); !ok || v != 1 {
				t.Fatalf("Get(alpha) = %d,%v", v, ok)
			}
			if v, ok := s.Get([]byte("beta")); !ok || v != 2 {
				t.Fatalf("Get(beta) = %d,%v", v, ok)
			}
			if _, ok := s.Get([]byte("gamma")); ok {
				t.Fatal("Get(gamma) must not return a value for PutKey entries")
			}
			if !s.Has([]byte("gamma")) {
				t.Fatal("Has(gamma) = false")
			}
			if s.Len() != 3 {
				t.Fatalf("Len = %d", s.Len())
			}
			if !s.Delete([]byte("beta")) || s.Has([]byte("beta")) {
				t.Fatal("Delete(beta) failed")
			}
			if s.Delete([]byte("missing")) {
				t.Fatal("Delete of a missing key returned true")
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStoreUint64Helpers(t *testing.T) {
	for name, opts := range allOptionVariants() {
		t.Run(name, func(t *testing.T) {
			s := New(opts)
			for i := uint64(0); i < 2000; i++ {
				s.PutUint64(i*7, i)
			}
			for i := uint64(0); i < 2000; i++ {
				if v, ok := s.GetUint64(i * 7); !ok || v != i {
					t.Fatalf("GetUint64(%d) = %d,%v", i*7, v, ok)
				}
			}
			if !s.DeleteUint64(7) || s.Len() != 1999 {
				t.Fatal("DeleteUint64 failed")
			}
		})
	}
}

func TestStoreOracle(t *testing.T) {
	for name, opts := range allOptionVariants() {
		t.Run(name, func(t *testing.T) {
			s := New(opts)
			oracle := map[string]uint64{}
			rng := rand.New(rand.NewSource(77))
			for i := 0; i < 8000; i++ {
				var key []byte
				if rng.Intn(2) == 0 {
					key = []byte(fmt.Sprintf("str/%c%c/%05d", 'a'+rng.Intn(26), 'a'+rng.Intn(26), rng.Intn(5000)))
				} else {
					key = make([]byte, 8)
					rng.Read(key)
				}
				if rng.Intn(10) == 0 && len(oracle) > 0 {
					s.Delete(key)
					delete(oracle, string(key))
					continue
				}
				v := rng.Uint64()
				s.Put(key, v)
				oracle[string(key)] = v
			}
			if s.Len() != len(oracle) {
				t.Fatalf("Len = %d, oracle %d", s.Len(), len(oracle))
			}
			for k, v := range oracle {
				if got, ok := s.Get([]byte(k)); !ok || got != v {
					t.Fatalf("Get(%q) = %d,%v want %d", k, got, ok, v)
				}
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestStoreRangeOrderedAcrossArenas(t *testing.T) {
	for name, opts := range allOptionVariants() {
		t.Run(name, func(t *testing.T) {
			s := New(opts)
			rng := rand.New(rand.NewSource(99))
			var want []string
			seen := map[string]bool{}
			for i := 0; i < 5000; i++ {
				key := make([]byte, 8)
				rng.Read(key)
				s.Put(key, uint64(i))
				if !seen[string(key)] {
					seen[string(key)] = true
					want = append(want, string(key))
				}
			}
			sort.Strings(want)
			var got []string
			s.Each(func(key []byte, _ uint64) bool {
				got = append(got, string(key))
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("Each visited %d keys, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("order mismatch at %d: %x vs %x", i, got[i], want[i])
				}
			}
			// Bounded range starting in the middle.
			start := want[len(want)/2]
			var bounded []string
			s.Range([]byte(start), func(key []byte, _ uint64) bool {
				bounded = append(bounded, string(key))
				return true
			})
			if len(bounded) != len(want)-len(want)/2 {
				t.Fatalf("bounded range returned %d keys, want %d", len(bounded), len(want)-len(want)/2)
			}
			if bounded[0] != start {
				t.Fatalf("bounded range starts at %x, want %x", bounded[0], start)
			}
		})
	}
}

// TestStoreRangeStartSkipsArenas locks in that the arena-skip in Range
// (starting the shard walk at start's own arena instead of index 0) returns
// exactly what a full scan filtered to key >= start returns, across arena
// counts and start positions — including starts routed to the first, a
// middle, and past the last arena, and the empty start.
func TestStoreRangeStartSkipsArenas(t *testing.T) {
	for _, arenas := range []int{1, 8, 256} {
		for _, prep := range []bool{false, true} {
			t.Run(fmt.Sprintf("arenas-%d/prep-%v", arenas, prep), func(t *testing.T) {
				opts := DefaultOptions()
				opts.Arenas = arenas
				opts.KeyPreprocessing = prep
				s := New(opts)
				rng := rand.New(rand.NewSource(7))
				for i := 0; i < 4000; i++ {
					// Fixed 8-byte keys: pre-processing preserves order for
					// keys >= 4 bytes, so raw-order filtering below is an
					// exact oracle in both configurations.
					key := make([]byte, 8)
					rng.Read(key)
					s.Put(key, uint64(i))
				}
				type kv struct {
					k string
					v uint64
				}
				var all []kv
				s.Each(func(key []byte, value uint64) bool {
					all = append(all, kv{string(key), value})
					return true
				})
				starts := [][]byte{
					nil,
					{},
					{0x00},
					[]byte(all[0].k),
					[]byte(all[len(all)/3].k),
					[]byte(all[len(all)/2].k + "\x00"), // successor of a stored key
					[]byte(all[2*len(all)/3].k),
					{0x80, 0x00},
					{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, // past every key
				}
				for _, start := range starts {
					var want []kv
					for _, p := range all {
						if bytes.Compare([]byte(p.k), start) >= 0 {
							want = append(want, p)
						}
					}
					var got []kv
					s.Range(start, func(key []byte, value uint64) bool {
						got = append(got, kv{string(key), value})
						return true
					})
					if len(got) != len(want) {
						t.Fatalf("start %x: Range returned %d keys, full-scan filter %d", start, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("start %x, index %d: Range %x=%d, filter %x=%d",
								start, i, got[i].k, got[i].v, want[i].k, want[i].v)
						}
					}
				}
			})
		}
	}
}

func TestStoreRangeEarlyStop(t *testing.T) {
	s := New(Options{Arenas: 16, EmbeddedEjectThreshold: 1 << 14})
	for i := 0; i < 4096; i++ {
		s.Put([]byte{byte(i >> 8), byte(i)}, uint64(i))
	}
	n := 0
	s.Each(func([]byte, uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestStorePreprocessingTransparent(t *testing.T) {
	plain := New(IntegerOptions())
	prep := New(PreprocessedIntegerOptions())
	rng := rand.New(rand.NewSource(123))
	keySet := make([][]byte, 3000)
	for i := range keySet {
		keySet[i] = make([]byte, 8)
		rng.Read(keySet[i])
		plain.Put(keySet[i], uint64(i))
		prep.Put(keySet[i], uint64(i))
	}
	for i, k := range keySet {
		v1, ok1 := plain.Get(k)
		v2, ok2 := prep.Get(k)
		if ok1 != ok2 || v1 != v2 {
			t.Fatalf("key %d: plain (%d,%v) vs preprocessed (%d,%v)", i, v1, ok1, v2, ok2)
		}
	}
	// Iteration must yield identical original keys in identical order.
	var a, b []string
	plain.Each(func(k []byte, _ uint64) bool { a = append(a, string(k)); return true })
	prep.Each(func(k []byte, _ uint64) bool { b = append(b, string(k)); return true })
	if len(a) != len(b) {
		t.Fatalf("iteration lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration order differs at %d", i)
		}
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := New(Options{Arenas: 16, EmbeddedEjectThreshold: 8 * 1024})
	var wg sync.WaitGroup
	workers := 8
	perWorker := 3000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := []byte(fmt.Sprintf("%02x-worker-%d-key-%06d", (w*37+i)%256, w, i))
				s.Put(key, uint64(w*perWorker+i))
				if v, ok := s.Get(key); !ok || v != uint64(w*perWorker+i) {
					panic("concurrent get mismatch")
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", s.Len(), workers*perWorker)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreStatsAndMemory(t *testing.T) {
	s := New(DefaultOptions())
	for i := 0; i < 20000; i++ {
		s.Put([]byte(fmt.Sprintf("metrics/host-%03d/cpu/%06d", i%50, i)), uint64(i))
	}
	st := s.Stats()
	if st.Keys != 20000 {
		t.Fatalf("Stats.Keys = %d", st.Keys)
	}
	if st.Containers == 0 || st.DeltaEncodedNodes == 0 {
		t.Fatalf("expected containers and delta-encoded nodes, got %+v", st)
	}
	ms := s.MemoryStats()
	if ms.Footprint <= 0 || ms.AllocatedChunks <= 0 {
		t.Fatalf("memory stats look wrong: %+v", ms)
	}
	if len(ms.Superbins) != 64 {
		t.Fatalf("expected 64 superbins, got %d", len(ms.Superbins))
	}
	if s.MemoryFootprint() != ms.Footprint {
		t.Fatal("MemoryFootprint and MemoryStats disagree")
	}
	bytesPerKey := float64(ms.Footprint) / 20000
	if bytesPerKey > 64 {
		t.Fatalf("bytes/key = %.1f, suspiciously high for prefix-heavy strings", bytesPerKey)
	}
}

func TestStoreClear(t *testing.T) {
	s := New(DefaultOptions())
	s.Put([]byte("x"), 1)
	s.Clear()
	if s.Len() != 0 || s.Has([]byte("x")) {
		t.Fatal("Clear did not empty the store")
	}
	s.Put([]byte("y"), 2)
	if v, ok := s.Get([]byte("y")); !ok || v != 2 {
		t.Fatal("store unusable after Clear")
	}
}

func TestStoreEmptyAndBinaryKeys(t *testing.T) {
	s := New(DefaultOptions())
	s.Put(nil, 1)
	s.Put([]byte{0}, 2)
	s.Put([]byte{0, 0}, 3)
	s.Put(bytes.Repeat([]byte{0xff}, 20), 4)
	if v, ok := s.Get(nil); !ok || v != 1 {
		t.Fatalf("empty key: %d,%v", v, ok)
	}
	if v, ok := s.Get([]byte{0}); !ok || v != 2 {
		t.Fatalf("zero key: %d,%v", v, ok)
	}
	if v, ok := s.Get([]byte{0, 0}); !ok || v != 3 {
		t.Fatalf("zero-zero key: %d,%v", v, ok)
	}
	if v, ok := s.Get(bytes.Repeat([]byte{0xff}, 20)); !ok || v != 4 {
		t.Fatalf("ff key: %d,%v", v, ok)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestOptionsNormalization(t *testing.T) {
	s := New(Options{Arenas: -5})
	if s.NumArenas() != 1 {
		t.Fatalf("negative arenas normalised to %d", s.NumArenas())
	}
	s = New(Options{Arenas: 1000})
	if s.NumArenas() != 256 {
		t.Fatalf("oversized arenas normalised to %d", s.NumArenas())
	}
	if New(Options{Arenas: 8, BatchWorkers: -3}).Workers() < 1 {
		t.Fatal("negative BatchWorkers must normalise to at least 1")
	}
}

func TestStoreName(t *testing.T) {
	if New(DefaultOptions()).Name() != "Hyperion" {
		t.Fatal("unexpected name")
	}
	if New(PreprocessedIntegerOptions()).Name() != "Hyperion_p" {
		t.Fatal("unexpected preprocessed name")
	}
}
