package hyperion

// Lock-free read path (epoch + seqlock). This file concentrates the whole
// protocol so every call site in store.go / batch.go / scan.go / stats.go
// stays a one-liner:
//
//   - Writers serialise per shard on sh.mu as before, but additionally
//     bracket the mutation between lockShardWrite and unlockShardWrite:
//     they pin the epoch domain (so frees they retire are tagged with a
//     still-open epoch), flip the tree's seqlock odd, mutate, drain any
//     safely-retired memory, flip the seqlock even, unpin, and nudge the
//     global epoch forward.
//
//   - Readers run walks optimistically and validate the tree's seqlock
//     afterwards. A reader that raced a mutation discards the result,
//     retries a few times, and finally falls back to the classic shard read
//     lock — which cannot starve, because writers hold the write half of the
//     same mutex. Long-window readers (cursor scans, batched shard groups)
//     additionally pin the epoch domain, which guarantees that no memory
//     they could have observed is recycled until they unpin; single-op point
//     reads skip the slot claim entirely (see the comment above shardGet)
//     and lean on the same epoch machinery indirectly — the write-side grace
//     period is what keeps a concurrently-retired chunk's bytes intact long
//     enough that validation, not memory safety, is the only concern.
//
// The point-read fast path therefore performs zero mutex acquisitions and
// zero atomic read-modify-writes: two sequence loads around the walk. The
// scan/batch fast path adds one slot CAS to pin and one store to unpin per
// chunk or shard group.
//
// Race-enabled builds compile the optimistic path out (lockFreeBuild in
// lockfree_race.go): the race detector cannot model a seqlock — readers
// intentionally overlap writers and discard torn results — so under -race
// every read takes the shard RWMutex and the suite validates the locked
// paths instead.

import (
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/memman"
)

// readTries is the number of optimistic attempts a reader makes before
// falling back to the shard read lock. Under a sustained write storm the
// fallback keeps readers live; under normal traffic the first attempt wins.
const readTries = 3

// optimisticMaxFrames bounds the cursor descent depth during optimistic
// scans: a torn read that manufactures a cyclic HP chain panics out of the
// walk instead of pushing frames forever. Legitimate descents push roughly
// one frame per two key bytes, so this admits keys of several KiB; deeper
// (torn or legitimately huge) walks fall back to the locked scan.
const optimisticMaxFrames = 4096

// ReadLockMode reports how point reads and scans synchronise with writers:
// "epoch" (lock-free seqlock-validated reads) or "rwmutex" (the
// classic shard read lock; race builds and DisableLockFreeReads). Benchmark
// rows record it so scaling curves are attributable.
func (s *Store) ReadLockMode() string {
	if s.lockFreeReads {
		return "epoch"
	}
	return "rwmutex"
}

// SetLockFreeReads switches the read path between the epoch-based lock-free
// protocol and the shard RWMutex at runtime. Enabling has no effect on a
// store built with DisableLockFreeReads or on a race-detector build (the
// lock-free machinery is absent there). Disabling only reroutes readers:
// write-side publication and deferred reclamation stay active, so retired
// memory keeps draining and the store can be flipped back at any time.
//
// It must not be called concurrently with any operation on the store. Its
// main consumer is the concurrency benchmark, which measures both protocols
// against the same store instance so allocation-layout luck cancels out of
// the comparison.
func (s *Store) SetLockFreeReads(enable bool) {
	s.lockFreeReads = enable && s.lockFree
}

// lockShardWrite acquires sh's write lock and opens the publication bracket.
// Every tree mutation in the package goes through this pair; the returned
// guard must be handed back to unlockShardWrite.
//
//hyperion:bracket shardwrite-begin
func (s *Store) lockShardWrite(sh *shard) epoch.Guard {
	sh.mu.Lock()
	if !s.lockFree {
		return epoch.Guard{}
	}
	g := s.epochs.Pin()
	sh.tree.Allocator().SetRetireEpoch(g.Epoch())
	sh.tree.BeginWrite()
	return g
}

// unlockShardWrite closes the bracket opened by lockShardWrite: drain any
// retired memory whose epoch is already quiescent (inside the seqlock
// bracket, so optimistic stats readers never observe a half-drained
// allocator), publish the new tree state, release the pin and try to move
// the global epoch forward so the next writer can drain what this one
// retired.
//
//hyperion:bracket shardwrite-end
func (s *Store) unlockShardWrite(sh *shard, g epoch.Guard) {
	if s.lockFree {
		a := sh.tree.Allocator()
		if a.RetiredCount() > 0 {
			a.DrainRetired(s.epochs.SafeEpoch())
		}
		sh.tree.EndWrite()
		g.Unpin()
		if a.RetiredCount() > 0 {
			s.epochs.TryAdvance()
		}
	}
	sh.mu.Unlock()
}

// Point reads (shardGet/shardHas/shardLen/shardStats and friends) run
// optimistically WITHOUT claiming a reader slot. They stay safe without the
// pin because their exposure window is a single bounded walk:
//
//   - the walk terminates regardless of what it reads (descent length is
//     bounded by the key, in-container scans always advance, cursor depth is
//     capped), and every byte it can reach stays in-bounds memory — in-slab
//     chunks are recycled in place, ext buffers are kept alive by the GC,
//     and retired chunks sit in the epoch-deferred free lists for at least a
//     full grace period before any reuse;
//   - a walk that does observe recycled bytes produces garbage or a panic,
//     both of which the seqlock validation / recover barrier convert into a
//     retry — exactly like any other torn read.
//
// Dropping the slot claim removes both reader-side atomic RMWs, which is
// what lets a point read undercut even an uncontended RLock/RUnlock pair.
// Cursor scans and batched group reads DO pin: they hold decoded positions
// (or fill caller-visible result slices) across a much longer window, and
// one slot CAS amortised over a chunk or a shard group is free.

// shardGet is Store.Get's per-shard read: optimistic first, locked fallback.
// The seqlock protocol is open-coded here instead of calling
// core.GetOptimistic: the recover barrier's defer keeps that wrapper from
// inlining, and on a sub-microsecond walk the extra call frame is a
// measurable slice of the protocol win. The one armed defer doubles as the
// panic fallback — a torn walk that panics is recovered and redone under the
// read lock, so the function still returns a correct result.
//
//hyperion:noalloc
func (s *Store) shardGet(sh *shard, k []byte) (value uint64, ok bool) {
	if s.lockFreeReads {
		walking := false
		defer func() {
			if walking && recover() != nil {
				sh.mu.RLock()
				value, ok = sh.tree.Get(k)
				sh.mu.RUnlock()
			}
		}()
		for t := 0; t < readTries; t++ {
			s0, stable := sh.tree.ReadSeq()
			if !stable {
				continue
			}
			walking = true
			v, vok := sh.tree.Get(k)
			walking = false
			if sh.tree.SeqValid(s0) {
				return v, vok
			}
		}
	}
	sh.mu.RLock()
	value, ok = sh.tree.Get(k)
	sh.mu.RUnlock()
	return value, ok
}

// shardHas is Store.Has's per-shard read; same open-coded protocol as
// shardGet.
//
//hyperion:noalloc
func (s *Store) shardHas(sh *shard, k []byte) (ok bool) {
	if s.lockFreeReads {
		walking := false
		defer func() {
			if walking && recover() != nil {
				sh.mu.RLock()
				ok = sh.tree.Has(k)
				sh.mu.RUnlock()
			}
		}()
		for t := 0; t < readTries; t++ {
			s0, stable := sh.tree.ReadSeq()
			if !stable {
				continue
			}
			walking = true
			v := sh.tree.Has(k)
			walking = false
			if sh.tree.SeqValid(s0) {
				return v
			}
		}
	}
	sh.mu.RLock()
	ok = sh.tree.Has(k)
	sh.mu.RUnlock()
	return ok
}

// shardLen reads one shard's key count.
func (s *Store) shardLen(sh *shard) int64 {
	if s.lockFreeReads {
		for t := 0; t < readTries; t++ {
			if n, valid := sh.tree.LenOptimistic(); valid {
				return n
			}
		}
	}
	sh.mu.RLock()
	n := sh.tree.Len()
	sh.mu.RUnlock()
	return n
}

// shardStats reads one shard's structural counters.
func (s *Store) shardStats(sh *shard) core.Stats {
	if s.lockFreeReads {
		for t := 0; t < readTries; t++ {
			if st, valid := sh.tree.StatsOptimistic(); valid {
				return st
			}
		}
	}
	sh.mu.RLock()
	st := sh.tree.Stats()
	sh.mu.RUnlock()
	return st
}

// shardMemStats reads one shard's allocator statistics. The allocator walk
// only loads published tables, but its counters are plain fields mutated
// inside write brackets (including the deferred-free drain), so the seqlock
// check makes the snapshot consistent.
func (s *Store) shardMemStats(sh *shard) memman.Stats {
	if s.lockFreeReads {
		for t := 0; t < readTries; t++ {
			if st, valid := s.memStatsOptimistic(sh); valid {
				return st
			}
		}
	}
	sh.mu.RLock()
	st := sh.tree.Allocator().Stats()
	sh.mu.RUnlock()
	return st
}

func (s *Store) memStatsOptimistic(sh *shard) (st memman.Stats, valid bool) {
	defer func() {
		if recover() != nil {
			valid = false
		}
	}()
	s0, stable := sh.tree.ReadSeq()
	if !stable {
		return st, false
	}
	st = sh.tree.Allocator().Stats()
	if !sh.tree.SeqValid(s0) {
		return memman.Stats{}, false
	}
	return st, true
}

// shardFootprint reads one shard's allocator footprint.
func (s *Store) shardFootprint(sh *shard) int64 {
	if s.lockFreeReads {
		for t := 0; t < readTries; t++ {
			if n, valid := s.footprintOptimistic(sh); valid {
				return n
			}
		}
	}
	sh.mu.RLock()
	n := sh.tree.MemoryFootprint()
	sh.mu.RUnlock()
	return n
}

func (s *Store) footprintOptimistic(sh *shard) (n int64, valid bool) {
	s0, stable := sh.tree.ReadSeq()
	if !stable {
		return 0, false
	}
	n = sh.tree.MemoryFootprint()
	if !sh.tree.SeqValid(s0) {
		return 0, false
	}
	return n, true
}

// readGetGroup fills results for a GetBatch shard group (opIdx nil = all of
// lookups): optimistic attempts first, shard read lock as fallback.
func (s *Store) readGetGroup(sh *shard, lookups [][]byte, opIdx []int32, results []Result) {
	if s.lockFreeReads {
		ps := s.epochs.TryPinRead()
		if ps == nil {
			ps = s.epochs.PinReadSlow()
		}
		if ps != nil {
			for t := 0; t < readTries; t++ {
				if s.optimisticGetGroup(sh, lookups, opIdx, results) {
					ps.Release()
					return
				}
			}
			ps.Release()
		}
	}
	sh.mu.RLock()
	s.getGroupWalk(sh, lookups, opIdx, results)
	sh.mu.RUnlock()
}

// getGroupWalk runs a group of lookups against sh's tree. It is shared by
// the locked and optimistic group paths and deliberately contains no defer:
// a defer in scope pessimises codegen for the whole function, which matters
// for a loop that runs once per batched key.
func (s *Store) getGroupWalk(sh *shard, lookups [][]byte, opIdx []int32, results []Result) {
	var scratch [opScratchSize]byte
	if opIdx == nil {
		for i := range lookups {
			results[i].Value, results[i].Ok = sh.tree.Get(s.transformAppend(scratch[:0], lookups[i]))
		}
	} else {
		for _, i := range opIdx {
			results[i].Value, results[i].Ok = sh.tree.Get(s.transformAppend(scratch[:0], lookups[i]))
		}
	}
}

// optimisticGetGroup runs a whole group of lookups under one seqlock
// snapshot: one sequence check per group instead of per key. A torn walk
// (panic or sequence change) invalidates the whole group; the results slice
// may then hold partial garbage, which the caller overwrites on retry or
// fallback.
func (s *Store) optimisticGetGroup(sh *shard, lookups [][]byte, opIdx []int32, results []Result) (valid bool) {
	s0, stable := sh.tree.ReadSeq()
	if !stable {
		return false
	}
	walking := true
	defer func() {
		if walking && recover() != nil {
			valid = false
		}
	}()
	s.getGroupWalk(sh, lookups, opIdx, results)
	walking = false
	return sh.tree.SeqValid(s0)
}

// readApplyGroup executes a read-only ApplyBatch shard group (OpGet/OpHas
// only; opIdx nil = the whole batch): optimistic first, locked fallback.
func (s *Store) readApplyGroup(sh *shard, ops []Op, opIdx []int32, results []Result) {
	if s.lockFreeReads {
		ps := s.epochs.TryPinRead()
		if ps == nil {
			ps = s.epochs.PinReadSlow()
		}
		if ps != nil {
			for t := 0; t < readTries; t++ {
				if s.optimisticApplyGroup(sh, ops, opIdx, results) {
					ps.Release()
					return
				}
			}
			ps.Release()
		}
	}
	sh.mu.RLock()
	s.applyGroupWalk(sh, ops, opIdx, results)
	sh.mu.RUnlock()
}

// applyGroupWalk runs a read-only op group against sh's tree; shared by the
// locked and optimistic paths, defer-free for the same codegen reason as
// getGroupWalk.
func (s *Store) applyGroupWalk(sh *shard, ops []Op, opIdx []int32, results []Result) {
	var scratch [opScratchSize]byte
	if opIdx == nil {
		for i, op := range ops {
			results[i] = applyOp(sh.tree, op, s.transformAppend(scratch[:0], op.Key))
		}
	} else {
		for _, i := range opIdx {
			results[i] = applyOp(sh.tree, ops[i], s.transformAppend(scratch[:0], ops[i].Key))
		}
	}
}

func (s *Store) optimisticApplyGroup(sh *shard, ops []Op, opIdx []int32, results []Result) (valid bool) {
	s0, stable := sh.tree.ReadSeq()
	if !stable {
		return false
	}
	walking := true
	defer func() {
		if walking && recover() != nil {
			valid = false
		}
	}()
	s.applyGroupWalk(sh, ops, opIdx, results)
	walking = false
	return sh.tree.SeqValid(s0)
}
