package hyperion

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// snapshotWorkload builds a reference store plus the raw content that went
// into it: valued pairs, bare (PutKey) keys, and optionally the empty key in
// either role.
type snapshotWorkload struct {
	valued []Pair
	bare   [][]byte
}

func buildSnapshotWorkload(rng *rand.Rand, n int, emptyKeyBare bool) snapshotWorkload {
	pairs := randomSortedPairs(rng, n, 24, 8)
	var w snapshotWorkload
	for i, p := range pairs {
		if i%7 == 3 {
			w.bare = append(w.bare, p.Key)
		} else {
			w.valued = append(w.valued, p)
		}
	}
	if emptyKeyBare {
		w.bare = append(w.bare, []byte{})
	} else {
		w.valued = append(w.valued, Pair{Key: []byte{}, Value: rng.Uint64()})
	}
	return w
}

func (w snapshotWorkload) populate(s *Store) {
	for _, p := range w.valued {
		s.Put(p.Key, p.Value)
	}
	for _, k := range w.bare {
		s.PutKey(k)
	}
}

// requireValueSemantics asserts that the valued/bare distinction survived:
// Range reports both, but only valued keys answer Get with ok=true.
func requireValueSemantics(t *testing.T, s *Store, w snapshotWorkload) {
	t.Helper()
	for _, p := range w.valued {
		if v, ok := s.Get(p.Key); !ok || v != p.Value {
			t.Fatalf("valued key %q: got (%d, %v), want (%d, true)", p.Key, v, ok, p.Value)
		}
	}
	for _, k := range w.bare {
		if !s.Has(k) {
			t.Fatalf("bare key %q missing", k)
		}
		if _, ok := s.Get(k); ok {
			t.Fatalf("bare key %q unexpectedly has a value", k)
		}
	}
}

// TestSnapshotRoundTripDifferential is the randomized save/load differential
// test across the configuration grid the issue names: arenas × key
// pre-processing × valued/bare keys including the empty key. The loaded
// store must produce byte-identical Range output to the original, preserve
// PutKey set semantics, and pass CheckInvariants.
func TestSnapshotRoundTripDifferential(t *testing.T) {
	for _, arenas := range []int{1, 8} {
		for _, prep := range []bool{false, true} {
			for _, emptyKeyBare := range []bool{false, true} {
				name := fmt.Sprintf("arenas-%d/prep-%v/emptyBare-%v", arenas, prep, emptyKeyBare)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(arenas)*100 + 7))
					opts := DefaultOptions()
					opts.Arenas = arenas
					opts.KeyPreprocessing = prep
					w := buildSnapshotWorkload(rng, 4000, emptyKeyBare)
					ref := New(opts)
					w.populate(ref)

					var buf bytes.Buffer
					if _, err := ref.Save(&buf); err != nil {
						t.Fatalf("Save: %v", err)
					}
					loaded, err := Load(bytes.NewReader(buf.Bytes()), opts)
					if err != nil {
						t.Fatalf("Load: %v", err)
					}
					requireSameContent(t, loaded, ref)
					requireValueSemantics(t, loaded, w)
				})
			}
		}
	}
}

// TestSnapshotRestoreIntoDifferentArenaCount checks that the arena count is
// a property of the loading options, not the file: a snapshot saved with
// many arenas restores into a store with fewer (and vice versa), because
// sections re-route through the leading-byte mapping.
func TestSnapshotRestoreIntoDifferentArenaCount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := buildSnapshotWorkload(rng, 3000, false)
	saveOpts := DefaultOptions()
	saveOpts.Arenas = 16
	ref := New(saveOpts)
	w.populate(ref)
	var buf bytes.Buffer
	if _, err := ref.Save(&buf); err != nil {
		t.Fatal(err)
	}
	for _, arenas := range []int{1, 4, 256} {
		loadOpts := DefaultOptions()
		loadOpts.Arenas = arenas
		loaded, err := Load(bytes.NewReader(buf.Bytes()), loadOpts)
		if err != nil {
			t.Fatalf("Load into %d arenas: %v", arenas, err)
		}
		requireSameContent(t, loaded, ref)
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	opts := DefaultOptions()
	opts.Arenas = 4
	var buf bytes.Buffer
	if _, err := New(opts).Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 0 {
		t.Fatalf("empty snapshot loaded %d keys", loaded.Len())
	}
}

// TestSnapshotFileRoundTrip exercises the SaveFile/LoadFile path, including
// overwriting an existing snapshot and the no-temp-file-left-behind side of
// the atomicity contract.
func TestSnapshotFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.hyp")
	rng := rand.New(rand.NewSource(3))
	opts := DefaultOptions()
	opts.Arenas = 8
	w := buildSnapshotWorkload(rng, 2500, true)
	ref := New(opts)
	w.populate(ref)

	for round := 0; round < 2; round++ { // second round overwrites
		if _, err := ref.SaveFile(path); err != nil {
			t.Fatalf("SaveFile round %d: %v", round, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("expected exactly the snapshot in %s, found %d entries", dir, len(entries))
	}
	loaded, err := LoadFile(path, opts)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	requireSameContent(t, loaded, ref)
	requireValueSemantics(t, loaded, w)

	if _, err := ref.SaveFile(filepath.Join(dir, "missing-dir", "x.hyp")); err == nil {
		t.Fatal("SaveFile into a missing directory should fail")
	}
	if _, err := LoadFile(filepath.Join(dir, "nope.hyp"), opts); err == nil {
		t.Fatal("LoadFile of a missing file should fail")
	}
}

// TestSnapshotKeyPreprocessingMismatch: the header records the saving
// store's key transformation and Load rejects options that disagree, in both
// directions.
func TestSnapshotKeyPreprocessingMismatch(t *testing.T) {
	for _, savedPrep := range []bool{false, true} {
		saveOpts := DefaultOptions()
		saveOpts.KeyPreprocessing = savedPrep
		s := New(saveOpts)
		s.Put([]byte("somekey1"), 1)
		var buf bytes.Buffer
		if _, err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loadOpts := DefaultOptions()
		loadOpts.KeyPreprocessing = !savedPrep
		_, err := Load(bytes.NewReader(buf.Bytes()), loadOpts)
		if err == nil {
			t.Fatalf("saved prep=%v, loaded prep=%v: expected an error", savedPrep, !savedPrep)
		}
		if !strings.Contains(err.Error(), "KeyPreprocessing") {
			t.Fatalf("mismatch error should name the flag, got: %v", err)
		}
		if errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("an options mismatch is not corruption: %v", err)
		}
	}
}

// snapshotBytes builds a moderately sized snapshot for the corruption tests.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	opts := DefaultOptions()
	opts.Arenas = 4
	s := New(opts)
	buildSnapshotWorkload(rng, 1500, false).populate(s)
	var buf bytes.Buffer
	if _, err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mustFailCorrupt loads the damaged image and requires a descriptive
// ErrCorruptSnapshot — never a panic, never a silently (half-)loaded store.
func mustFailCorrupt(t *testing.T, data []byte, what string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: Load panicked: %v", what, r)
		}
	}()
	st, err := Load(bytes.NewReader(data), DefaultOptions())
	if err == nil {
		t.Fatalf("%s: Load succeeded on a damaged snapshot", what)
	}
	if st != nil {
		t.Fatalf("%s: Load returned a store alongside the error", what)
	}
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("%s: error does not wrap ErrCorruptSnapshot: %v", what, err)
	}
}

// TestSnapshotCorruptionByteFlips flips individual bytes — every byte of the
// header region and a large random sample of the rest — and requires every
// single flip to be rejected. The format's two checksum kinds (header CRC,
// per-section CRC over header+payload) cover every byte of the file.
func TestSnapshotCorruptionByteFlips(t *testing.T) {
	orig := snapshotBytes(t)
	flip := func(i int) []byte {
		d := append([]byte(nil), orig...)
		d[i] ^= 0x5a
		return d
	}
	for i := 0; i < 96 && i < len(orig); i++ {
		mustFailCorrupt(t, flip(i), fmt.Sprintf("flip byte %d", i))
	}
	rng := rand.New(rand.NewSource(99))
	for n := 0; n < 400; n++ {
		i := rng.Intn(len(orig))
		mustFailCorrupt(t, flip(i), fmt.Sprintf("flip byte %d", i))
	}
}

// TestSnapshotTruncation cuts the file at every early offset and a stride of
// later ones; every truncation must fail cleanly.
func TestSnapshotTruncation(t *testing.T) {
	orig := snapshotBytes(t)
	for cut := 0; cut < 64 && cut < len(orig); cut++ {
		mustFailCorrupt(t, orig[:cut], fmt.Sprintf("truncate to %d", cut))
	}
	step := len(orig)/97 + 1
	for cut := 64; cut < len(orig); cut += step {
		mustFailCorrupt(t, orig[:cut], fmt.Sprintf("truncate to %d", cut))
	}
}

func TestSnapshotTrailingData(t *testing.T) {
	orig := snapshotBytes(t)
	mustFailCorrupt(t, append(append([]byte(nil), orig...), 0x00), "one trailing byte")
}

// TestSnapshotLoadBatchedFlush exercises the bounded-batch decode path with
// a maximally delta-compressed snapshot: nested-prefix keys encode to ~2
// bytes each on disk but reconstruct to megabytes of key material, far past
// loadFlushBytes, forcing multiple intra-section ingest flushes (and proving
// a high-amplification file cannot balloon the decoder's buffers — the
// transient cost is bounded regardless of what the payload expands to).
func TestSnapshotLoadBatchedFlush(t *testing.T) {
	const n = 12000 // nested prefixes of an n-byte string: sum of lengths ≈ n²/2 ≈ 72 MB, > 2 flushes
	rng := rand.New(rand.NewSource(17))
	base := make([]byte, n)
	rng.Read(base)
	opts := DefaultOptions()
	ref := New(opts)
	for i := 1; i <= n; i++ {
		ref.Put(base[:i], uint64(i))
	}
	var buf bytes.Buffer
	saved, err := ref.Save(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if saved != n {
		t.Fatalf("saved %d keys, want %d", saved, n)
	}
	// ~6 B/key on disk (two-byte lcp varint, head, one suffix byte, value
	// varint) vs ~4 KiB/key reconstructed: the point of the test.
	if buf.Len() > 8*n+1024 {
		t.Fatalf("delta encoding regressed: %d bytes for %d nested-prefix keys", buf.Len(), n)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameContent(t, loaded, ref)
}

// TestSnapshotSaveDuringConcurrentWrites is the -race smoke test of the Save
// consistency contract: a save racing with writers must produce a loadable
// snapshot that contains every key untouched during the save exactly once,
// with its original value.
func TestSnapshotSaveDuringConcurrentWrites(t *testing.T) {
	opts := DefaultOptions()
	opts.Arenas = 8
	s := New(opts)
	const stable = 20000
	for i := 0; i < stable; i++ {
		s.Put([]byte(fmt.Sprintf("stable-%06d", i)), uint64(i))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("hot-%d-%06d", g, rng.Intn(4096)))
				if i%3 == 0 {
					s.Delete(k)
				} else {
					s.Put(k, uint64(i))
				}
			}
		}(g)
	}

	var buf bytes.Buffer
	if _, err := s.Save(&buf); err != nil {
		t.Fatalf("Save under concurrent writes: %v", err)
	}
	close(stop)
	wg.Wait()

	loaded, err := Load(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	var prev []byte
	first := true
	loaded.Each(func(key []byte, value uint64) bool {
		if !first && bytes.Compare(prev, key) >= 0 {
			t.Fatalf("loaded store iterates out of order: %q then %q", prev, key)
		}
		prev = append(prev[:0], key...)
		first = false
		switch {
		case bytes.HasPrefix(key, []byte("stable-")):
			seen++
			var want int
			fmt.Sscanf(string(key), "stable-%d", &want)
			if value != uint64(want) {
				t.Fatalf("stable key %q: value %d, want %d", key, value, want)
			}
		case bytes.HasPrefix(key, []byte("hot-")):
			// May or may not be present; only shape is guaranteed.
		default:
			t.Fatalf("unexpected key %q in snapshot", key)
		}
		return true
	})
	if seen != stable {
		t.Fatalf("snapshot carried %d stable keys, want %d", seen, stable)
	}
}
