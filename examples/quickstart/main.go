// Quickstart: the smallest useful Hyperion program. It stores a handful of
// keys, reads them back, iterates a range, deletes one, and prints the
// engine's structural statistics.
package main

import (
	"fmt"

	"repro/hyperion"
)

func main() {
	store := hyperion.New(hyperion.DefaultOptions())

	// Point writes: arbitrary byte-string keys, 64-bit values.
	store.Put([]byte("user:1001:name-hash"), 0xdeadbeef)
	store.Put([]byte("user:1001:last-login"), 1718500000)
	store.Put([]byte("user:1002:name-hash"), 0xfeedface)
	store.Put([]byte("user:1002:last-login"), 1718503600)
	store.PutKey([]byte("user:1002:verified")) // a key without a value (set member)

	// Integer convenience helpers use the binary-comparable encoding.
	for i := uint64(0); i < 1000; i++ {
		store.PutUint64(i, i*i)
	}

	// Point reads.
	if v, ok := store.Get([]byte("user:1001:last-login")); ok {
		fmt.Println("user:1001:last-login =", v)
	}
	if v, ok := store.GetUint64(31); ok {
		fmt.Println("31^2 =", v)
	}
	fmt.Println("user:1002 verified?", store.Has([]byte("user:1002:verified")))

	// Ordered range query: every key starting at the given prefix, in
	// lexicographic order.
	fmt.Println("\nkeys of user:1002, in order:")
	store.Range([]byte("user:1002:"), func(key []byte, value uint64) bool {
		if string(key) > "user:1002:\xff" {
			return false
		}
		fmt.Printf("  %s = %d\n", key, value)
		return true
	})

	// Deletes reclaim container space.
	store.Delete([]byte("user:1001:name-hash"))

	fmt.Println("\nstored keys:", store.Len())
	st := store.Stats()
	fmt.Printf("engine: %d containers, %d embedded, %d path-compressed suffixes, %d delta-encoded nodes\n",
		st.Containers, st.EmbeddedContainers, st.PathCompressed, st.DeltaEncodedNodes)
	ms := store.MemoryStats()
	fmt.Printf("memory: %.1f KiB total, %.2f bytes/key\n",
		float64(ms.Footprint)/1024, float64(ms.Footprint)/float64(store.Len()))
}
