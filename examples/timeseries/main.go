// The time-series example models the IoT / network-monitoring use case the
// paper motivates in §1: millions of per-device traffic counters kept in
// memory on an edge device with a tight memory budget. Keys are
// "dev/<id>/<timestamp>" so that a range query over one device's prefix
// returns its samples in chronological order.
package main

import (
	"bytes"
	"fmt"

	"repro/hyperion"
	"repro/internal/workload"
)

func main() {
	const devices, samples = 2000, 500 // one million samples
	fmt.Printf("ingesting %d devices x %d samples...\n", devices, samples)
	ds := workload.IoTTimeSeries(workload.DefaultIoTOptions(devices, samples))

	store := hyperion.New(hyperion.Options{
		Arenas:                 8, // writers for different devices rarely contend
		EmbeddedEjectThreshold: 16 * 1024,
	})
	for i := 0; i < ds.Len(); i++ {
		store.Put(ds.Key(i), ds.Value(i))
	}

	ms := store.MemoryStats()
	fmt.Printf("indexed %d samples in %.1f MiB (%.1f bytes per sample, %.1f-byte keys)\n\n",
		store.Len(), float64(ms.Footprint)/(1<<20), float64(ms.Footprint)/float64(store.Len()), ds.AverageKeySize())

	// Chronological scan of one device: a single ordered prefix query.
	device := []byte("dev/000042/")
	fmt.Printf("first samples of %s:\n", device)
	count := 0
	var first, last uint64
	store.Range(device, func(key []byte, value uint64) bool {
		if !bytes.HasPrefix(key, device) {
			return false
		}
		if count < 5 {
			fmt.Printf("  %s -> %d bytes transferred\n", key, value)
		}
		if count == 0 {
			first = value
		}
		last = value
		count++
		return true
	})
	fmt.Printf("device 42: %d samples, traffic grew from %d to %d bytes\n", count, first, last)

	// Downsampling: every 100th sample of a device, still one ordered scan.
	fmt.Println("\nevery 100th sample of dev/001999:")
	i := 0
	prefix := []byte("dev/001999/")
	store.Range(prefix, func(key []byte, value uint64) bool {
		if !bytes.HasPrefix(key, prefix) {
			return false
		}
		if i%100 == 0 {
			fmt.Printf("  %s -> %d\n", key, value)
		}
		i++
		return true
	})
}
