// The DNA k-mer example exercises the long-key capability the paper points
// out for future sequencing workloads (§1): counting k-mers (fixed-length
// substrings over the ACGT alphabet) of simulated reads, then querying them
// by prefix. Tries shine here because k-mers share massive prefixes and the
// four-letter alphabet keeps containers dense.
package main

import (
	"bytes"
	"fmt"

	"repro/hyperion"
	"repro/internal/workload"
)

func main() {
	opts := workload.DefaultDNAOptions(3000, 150, 31) // ~360k 31-mers with duplicates
	fmt.Printf("simulating %d reads of %d bases, counting %d-mers...\n", opts.Reads, opts.ReadLength, opts.K)
	ds := workload.DNAKmers(opts)

	store := hyperion.New(hyperion.DefaultOptions())
	for i := 0; i < ds.Len(); i++ {
		store.Put(ds.Key(i), ds.Value(i))
	}

	ms := store.MemoryStats()
	fmt.Printf("distinct %d-mers: %d, index size %.1f MiB (%.1f bytes per k-mer incl. count)\n\n",
		opts.K, store.Len(), float64(ms.Footprint)/(1<<20), float64(ms.Footprint)/float64(store.Len()))

	// Histogram of counts via a full ordered scan.
	hist := map[uint64]int{}
	store.Each(func(_ []byte, count uint64) bool {
		hist[count]++
		return true
	})
	fmt.Println("k-mer multiplicity histogram:")
	for c := uint64(1); c <= 5; c++ {
		if hist[c] > 0 {
			fmt.Printf("  seen %dx: %d k-mers\n", c, hist[c])
		}
	}

	// Prefix query: all k-mers starting with a seed sequence.
	seed := []byte("ACGTACGT")
	fmt.Printf("\nk-mers starting with %s:\n", seed)
	n := 0
	store.Range(seed, func(key []byte, count uint64) bool {
		if !bytes.HasPrefix(key, seed) {
			return false
		}
		if n < 8 {
			fmt.Printf("  %s x%d\n", key, count)
		}
		n++
		return true
	})
	fmt.Printf("  (%d k-mers share that 8-base seed)\n", n)

	st := store.Stats()
	fmt.Printf("\nengine: %d containers, %d embedded, %d path-compressed suffixes (avg %.1f bytes)\n",
		st.Containers, st.EmbeddedContainers, st.PathCompressed,
		float64(st.PathCompressedLen)/float64(max64(st.PathCompressed, 1)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
