// The n-gram example reproduces the paper's headline workload (§4.3) at demo
// scale: a Google-Books-style corpus of n-gram keys is indexed by Hyperion
// and, for comparison, by the ART baseline and a plain Go map. It prints the
// memory consumption per key, the paper's key metric, plus prefix-query
// examples that hash-based stores cannot answer.
package main

import (
	"bytes"
	"fmt"
	"time"

	"repro/hyperion"
	"repro/index"
	"repro/internal/workload"
)

func main() {
	const n = 500_000
	fmt.Printf("generating a synthetic Google-Books-style corpus of %d n-grams...\n", n)
	corpus := workload.NGrams(workload.DefaultNGramOptions(n)).Sorted()
	fmt.Printf("average key size: %.1f bytes\n\n", corpus.AverageKeySize())

	// Index the corpus with Hyperion. The corpus is sorted, so BulkLoad
	// takes the append-only bulk-ingestion path: containers are laid out at
	// their exact final size in one pass instead of growing node by node.
	store := hyperion.New(hyperion.DefaultOptions())
	pairs := make([]hyperion.Pair, corpus.Len())
	for i := range pairs {
		pairs[i] = hyperion.Pair{Key: corpus.Key(i), Value: corpus.Value(i)}
	}
	loadStart := time.Now()
	store.BulkLoad(pairs)
	fmt.Printf("bulk-loaded %d pairs in %v\n", len(pairs), time.Since(loadStart).Round(time.Millisecond))

	// And with two comparison structures through the common interface.
	art := index.NewART()
	hash := index.NewHash()
	for i := 0; i < corpus.Len(); i++ {
		art.Put(corpus.Key(i), corpus.Value(i))
		hash.Put(corpus.Key(i), corpus.Value(i))
	}

	keys := float64(store.Len())
	fmt.Println("memory per key (including the 8-byte value):")
	fmt.Printf("  %-10s %8.1f B/key\n", "Hyperion", float64(store.MemoryFootprint())/keys)
	fmt.Printf("  %-10s %8.1f B/key\n", art.Name(), float64(art.MemoryFootprint())/float64(art.Len()))
	fmt.Printf("  %-10s %8.1f B/key\n", hash.Name(), float64(hash.MemoryFootprint())/float64(hash.Len()))

	st := store.Stats()
	fmt.Printf("\nhow Hyperion gets there (paper §4.3):\n")
	fmt.Printf("  delta-encoded nodes:      %d\n", st.DeltaEncodedNodes)
	fmt.Printf("  embedded containers:      %d\n", st.EmbeddedContainers)
	fmt.Printf("  path-compressed suffixes: %d (%d bytes)\n", st.PathCompressed, st.PathCompressedLen)
	fmt.Printf("  standalone containers:    %d (%d ejections, %d splits)\n", st.Containers, st.Ejections, st.Splits)

	// Prefix lookups: all n-grams starting with a given word, in order.
	prefix := []byte("hyperion ")
	fmt.Printf("\nfirst n-grams starting with %q:\n", prefix)
	shown := 0
	store.Range(prefix, func(key []byte, value uint64) bool {
		if !bytes.HasPrefix(key, prefix) {
			return false
		}
		books := value >> 32
		occurrences := value & 0xffffffff
		fmt.Printf("  %-60q books=%-5d occurrences=%d\n", key, books, occurrences)
		shown++
		return shown < 10
	})
	if shown == 0 {
		fmt.Println("  (none in this corpus)")
	}
}
