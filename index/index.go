// Package index defines the common key-value interface that Hyperion and
// every comparison data structure of the paper's evaluation implement, plus
// constructors and a registry used by the benchmark harness and the examples.
//
// All structures map byte-string keys to 64-bit values, exactly like the
// paper's k/v-store usage of the original implementations (§4.1).
package index

import (
	"io"

	"repro/hyperion"
	"repro/internal/art"
	"repro/internal/hashkv"
	"repro/internal/hattrie"
	"repro/internal/hot"
	"repro/internal/judy"
	"repro/internal/rbtree"
)

// KV is the minimal key-value store interface.
type KV interface {
	// Put stores key with value, overwriting any existing value.
	Put(key []byte, value uint64)
	// Get returns the value stored for key.
	Get(key []byte) (uint64, bool)
	// Delete removes key and reports whether it was present.
	Delete(key []byte) bool
	// Len returns the number of stored keys.
	Len() int
	// Name identifies the structure in reports.
	Name() string
	// MemoryFootprint returns the structure's self-accounted memory usage in
	// bytes (allocator-exact for Hyperion, analytic node models for the
	// re-implemented baselines; see DESIGN.md).
	MemoryFootprint() int64
}

// Ordered is a KV store that supports ordered iteration, the prerequisite for
// the range-query experiment (Table 3).
type Ordered interface {
	KV
	// Range calls fn for every key >= start in lexicographic order until fn
	// returns false.
	Range(start []byte, fn func(key []byte, value uint64) bool)
	// Each iterates every key in order.
	Each(fn func(key []byte, value uint64) bool)
}

// Batcher is the optional batched execution interface. Structures that
// implement it can group many operations into one call, amortise their
// internal locking across the batch and execute independent partitions in
// parallel (Hyperion groups by arena; see hyperion/batch.go). The benchmark
// harness dispatches the batched half of the concurrency experiment through
// this interface; cmd/hyperion-server holds a concrete *hyperion.Store and
// calls its batch methods directly. The batch op/result types are Hyperion's
// own — today it is the only batched structure, and a second implementation
// would motivate hoisting them here.
type Batcher interface {
	KV
	// ApplyBatch executes a mixed batch and returns one result per op.
	ApplyBatch(ops []hyperion.Op) []hyperion.Result
	// GetBatch looks up every key and returns one result per key.
	GetBatch(keys [][]byte) []hyperion.Result
	// BulkLoad ingests a run of pairs with Put semantics. Sorted runs take
	// the append-only bulk-ingestion fast path (one pass per container,
	// single-memmove block inserts, exact-size allocations, parallel across
	// partitions); unsorted input transparently falls back to per-key puts.
	BulkLoad(pairs []hyperion.Pair)
}

// AsBatcher returns kv's batched execution interface, if it has one.
func AsBatcher(kv KV) (Batcher, bool) {
	b, ok := kv.(Batcher)
	return b, ok
}

// PrefixScanner is the optional prefix-query interface: structures that
// implement it answer "every key under this prefix" without scanning (or
// even touching) the rest of the key space. Hyperion backs it with the
// seek-aware cursor engine: the scan starts at the prefix via the container
// and T-Node jump tables and stops at the prefix successor, and CountPrefix
// additionally skips materialising the keys — the right tool for the n-gram
// prefix-counting workloads the paper's string data sets model.
type PrefixScanner interface {
	KV
	// ScanPrefix calls fn for every stored key that starts with prefix, in
	// the store's iteration order, until fn returns false.
	ScanPrefix(prefix []byte, fn func(key []byte, value uint64) bool)
	// CountPrefix returns the number of stored keys starting with prefix.
	CountPrefix(prefix []byte) int
}

// AsPrefixScanner returns kv's prefix-query interface, if it has one.
func AsPrefixScanner(kv KV) (PrefixScanner, bool) {
	p, ok := kv.(PrefixScanner)
	return p, ok
}

// Snapshotter is the optional durability interface: structures that
// implement it can serialize their full content to a stream and write it
// atomically to a file. The matching load side is constructor-shaped
// (hyperion.Load / hyperion.LoadFile rebuild a store from the stream at
// bulk-ingest speed), so it lives with the implementation rather than here;
// a second persistent structure would motivate a registry-level loader.
type Snapshotter interface {
	KV
	// Save streams a snapshot and returns the number of keys written. It is
	// safe to run concurrently with reads and writes; see the
	// implementation's consistency contract.
	Save(w io.Writer) (int, error)
	// SaveFile writes a snapshot to path atomically (temp file + rename)
	// and returns the number of keys written.
	SaveFile(path string) (int, error)
}

// AsSnapshotter returns kv's durability interface, if it has one.
func AsSnapshotter(kv KV) (Snapshotter, bool) {
	s, ok := kv.(Snapshotter)
	return s, ok
}

// Compile-time interface checks.
var (
	_ Ordered       = (*hyperion.Store)(nil)
	_ Batcher       = (*hyperion.Store)(nil)
	_ Snapshotter   = (*hyperion.Store)(nil)
	_ PrefixScanner = (*hyperion.Store)(nil)
	_ Ordered       = (*art.Tree)(nil)
	_ Ordered       = (*judy.Tree)(nil)
	_ Ordered       = (*hot.Tree)(nil)
	_ Ordered       = (*hattrie.Tree)(nil)
	_ Ordered       = (*rbtree.Tree)(nil)
	_ KV            = (*hashkv.Map)(nil)
)

// NewHyperion creates a Hyperion store with the paper's string-tuned default
// options.
func NewHyperion() *hyperion.Store { return hyperion.New(hyperion.DefaultOptions()) }

// NewHyperionInteger creates a Hyperion store with the integer-tuned options
// (8 KiB embedded-container threshold).
func NewHyperionInteger() *hyperion.Store { return hyperion.New(hyperion.IntegerOptions()) }

// NewHyperionP creates a Hyperion store with key pre-processing enabled
// ("Hyperion_p" in the paper).
func NewHyperionP() *hyperion.Store { return hyperion.New(hyperion.PreprocessedIntegerOptions()) }

// NewART creates an Adaptive Radix Tree with the paper's "ART" memory
// accounting (external key/value array).
func NewART() *art.Tree { return art.New() }

// NewARTC creates an Adaptive Radix Tree with the paper's "ARTC" accounting
// (single-value leaves).
func NewARTC() *art.Tree { return art.NewC() }

// NewJudy creates a Judy-like adaptive radix tree.
func NewJudy() *judy.Tree { return judy.New() }

// NewHOT creates a height-optimised-trie-like index.
func NewHOT() *hot.Tree { return hot.New() }

// NewHAT creates a HAT-trie.
func NewHAT() *hattrie.Tree { return hattrie.New() }

// NewRBTree creates a red-black tree (the std::map baseline).
func NewRBTree() *rbtree.Tree { return rbtree.New() }

// NewHash creates a hash table (the std::unordered_map baseline).
func NewHash() *hashkv.Map { return hashkv.New() }

// Factory describes one data structure available to the benchmark harness.
type Factory struct {
	// Name as used in the paper's tables.
	Name string
	// New creates an empty instance.
	New func() KV
	// Ordered reports whether the structure supports range queries.
	Ordered bool
	// Batched reports whether instances implement Batcher, i.e. support the
	// grouped parallel execution path of the concurrency experiment.
	Batched bool
	// IntegerTuned creates the variant used for the integer experiments (may
	// be nil when it does not differ from New).
	IntegerTuned func() KV
}

// All returns the factories for every structure of the paper's evaluation,
// in the order the paper's tables list them.
func All() []Factory {
	return []Factory{
		{Name: "Hyperion", New: func() KV { return NewHyperion() }, Ordered: true, Batched: true,
			IntegerTuned: func() KV { return NewHyperionInteger() }},
		{Name: "Hyperion_p", New: func() KV { return NewHyperionP() }, Ordered: true, Batched: true},
		{Name: "Judy", New: func() KV { return NewJudy() }, Ordered: true},
		{Name: "HAT", New: func() KV { return NewHAT() }, Ordered: true},
		{Name: "ART_C", New: func() KV { return NewARTC() }, Ordered: true},
		{Name: "ART", New: func() KV { return NewART() }, Ordered: true},
		{Name: "HOT", New: func() KV { return NewHOT() }, Ordered: true},
		{Name: "RB-Tree", New: func() KV { return NewRBTree() }, Ordered: true},
		{Name: "Hash", New: func() KV { return NewHash() }, Ordered: false},
	}
}

// ByName returns the factory with the given name, or false.
func ByName(name string) (Factory, bool) {
	for _, f := range All() {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}
