package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/hyperion"
)

// The conformance suite drives every registered structure through the same
// oracle-checked workloads: point operations, deletions, ordered iteration
// and memory accounting sanity.

func datasets(t *testing.T) map[string][][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(2024))
	sets := map[string][][]byte{}

	var seq [][]byte
	for i := 0; i < 4000; i++ {
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, uint64(i))
		seq = append(seq, k)
	}
	sets["sequential-int"] = seq

	var rnd [][]byte
	for i := 0; i < 4000; i++ {
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, rng.Uint64())
		rnd = append(rnd, k)
	}
	sets["random-int"] = rnd

	var words [][]byte
	vocab := []string{"analysis", "boston", "cambridge", "data", "engine", "frame", "graph", "hyperion", "index", "journal"}
	for i := 0; i < 4000; i++ {
		w1 := vocab[rng.Intn(len(vocab))]
		w2 := vocab[rng.Intn(len(vocab))]
		words = append(words, []byte(fmt.Sprintf("%s %s %d", w1, w2, 1800+rng.Intn(220))))
	}
	sets["ngram-like"] = words

	var mixed [][]byte
	for i := 0; i < 2000; i++ {
		l := 1 + rng.Intn(60)
		k := make([]byte, l)
		rng.Read(k)
		mixed = append(mixed, k)
	}
	sets["binary-mixed"] = mixed
	return sets
}

func TestConformancePutGet(t *testing.T) {
	for _, f := range All() {
		for setName, keys := range datasets(t) {
			t.Run(f.Name+"/"+setName, func(t *testing.T) {
				kv := f.New()
				oracle := map[string]uint64{}
				for i, k := range keys {
					v := uint64(i)*2654435761 + 17
					kv.Put(k, v)
					oracle[string(k)] = v
				}
				if kv.Len() != len(oracle) {
					t.Fatalf("%s: Len=%d oracle=%d", f.Name, kv.Len(), len(oracle))
				}
				for k, v := range oracle {
					got, ok := kv.Get([]byte(k))
					if !ok || got != v {
						t.Fatalf("%s: Get(%q)=%d,%v want %d", f.Name, k, got, ok, v)
					}
				}
				// Absent keys must miss.
				for i := 0; i < 200; i++ {
					probe := append(append([]byte{}, keys[i%len(keys)]...), 0xfd, byte(i))
					if _, exists := oracle[string(probe)]; exists {
						continue
					}
					if _, ok := kv.Get(probe); ok {
						t.Fatalf("%s: Get of absent key succeeded", f.Name)
					}
				}
				if kv.MemoryFootprint() <= 0 {
					t.Fatalf("%s: non-positive memory footprint", f.Name)
				}
			})
		}
	}
}

func TestConformanceOverwrite(t *testing.T) {
	for _, f := range All() {
		t.Run(f.Name, func(t *testing.T) {
			kv := f.New()
			key := []byte("overwrite-me")
			for i := 0; i < 10; i++ {
				kv.Put(key, uint64(i))
			}
			if v, ok := kv.Get(key); !ok || v != 9 {
				t.Fatalf("%s: got %d,%v", f.Name, v, ok)
			}
			if kv.Len() != 1 {
				t.Fatalf("%s: Len=%d", f.Name, kv.Len())
			}
		})
	}
}

func TestConformanceDelete(t *testing.T) {
	for _, f := range All() {
		for setName, keys := range datasets(t) {
			t.Run(f.Name+"/"+setName, func(t *testing.T) {
				kv := f.New()
				oracle := map[string]uint64{}
				for i, k := range keys {
					kv.Put(k, uint64(i))
					oracle[string(k)] = uint64(i)
				}
				// Delete every third distinct key.
				i := 0
				for k := range oracle {
					if i%3 == 0 {
						if !kv.Delete([]byte(k)) {
							t.Fatalf("%s: Delete(%q) returned false", f.Name, k)
						}
						delete(oracle, k)
					}
					i++
				}
				if kv.Len() != len(oracle) {
					t.Fatalf("%s: Len=%d oracle=%d", f.Name, kv.Len(), len(oracle))
				}
				for k, v := range oracle {
					if got, ok := kv.Get([]byte(k)); !ok || got != v {
						t.Fatalf("%s: Get(%q)=%d,%v want %d", f.Name, k, got, ok, v)
					}
				}
				if kv.Delete([]byte("definitely-not-present-\xff\xfe")) {
					t.Fatalf("%s: deleting an absent key returned true", f.Name)
				}
			})
		}
	}
}

func TestConformanceOrderedIteration(t *testing.T) {
	for _, f := range All() {
		if !f.Ordered {
			continue
		}
		for setName, keys := range datasets(t) {
			if f.Name == "Hyperion_p" && setName == "binary-mixed" {
				// Key pre-processing targets fixed-size (>= 4 byte) keys; it
				// does not preserve order across the short/long key boundary
				// (documented limitation, paper §3.4).
				continue
			}
			t.Run(f.Name+"/"+setName, func(t *testing.T) {
				kv := f.New().(Ordered)
				oracle := map[string]uint64{}
				for i, k := range keys {
					kv.Put(k, uint64(i))
					oracle[string(k)] = uint64(i)
				}
				var want []string
				for k := range oracle {
					want = append(want, k)
				}
				sort.Strings(want)

				var got []string
				kv.Each(func(k []byte, v uint64) bool {
					got = append(got, string(k))
					if v != oracle[string(k)] {
						t.Fatalf("%s: value mismatch for %q", f.Name, k)
					}
					return true
				})
				if len(got) != len(want) {
					t.Fatalf("%s: iterated %d keys, want %d", f.Name, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: order mismatch at %d: %q vs %q", f.Name, i, got[i], want[i])
					}
				}

				// Bounded range from the median key.
				start := want[len(want)/2]
				idx := sort.SearchStrings(want, start)
				var bounded []string
				kv.Range([]byte(start), func(k []byte, _ uint64) bool {
					bounded = append(bounded, string(k))
					return true
				})
				if len(bounded) != len(want)-idx {
					t.Fatalf("%s: bounded range %d keys, want %d", f.Name, len(bounded), len(want)-idx)
				}
				if !sort.StringsAreSorted(bounded) {
					t.Fatalf("%s: bounded range not sorted", f.Name)
				}
				if bytes.Compare([]byte(bounded[0]), []byte(start)) < 0 {
					t.Fatalf("%s: bounded range starts below the bound", f.Name)
				}

				// Early termination.
				n := 0
				kv.Each(func([]byte, uint64) bool { n++; return n < 7 })
				if n != 7 {
					t.Fatalf("%s: early stop visited %d keys", f.Name, n)
				}
			})
		}
	}
}

func TestConformanceEmptyAndEdgeKeys(t *testing.T) {
	edge := [][]byte{
		{},
		{0},
		{0, 0, 0},
		{0xff},
		bytes.Repeat([]byte{0xff}, 64),
		[]byte("a"),
		[]byte("ab"),
		[]byte("abc"),
		[]byte("abcd"),
		bytes.Repeat([]byte("ab"), 100),
	}
	for _, f := range All() {
		t.Run(f.Name, func(t *testing.T) {
			kv := f.New()
			for i, k := range edge {
				kv.Put(k, uint64(i+1))
			}
			for i, k := range edge {
				if v, ok := kv.Get(k); !ok || v != uint64(i+1) {
					t.Fatalf("%s: edge key %d: %d,%v", f.Name, i, v, ok)
				}
			}
			if kv.Len() != len(edge) {
				t.Fatalf("%s: Len=%d want %d", f.Name, kv.Len(), len(edge))
			}
			for i, k := range edge {
				if !kv.Delete(k) {
					t.Fatalf("%s: Delete edge key %d failed", f.Name, i)
				}
			}
			if kv.Len() != 0 {
				t.Fatalf("%s: Len=%d after deleting all", f.Name, kv.Len())
			}
		})
	}
}

func TestConformanceRandomisedOracle(t *testing.T) {
	for _, f := range All() {
		t.Run(f.Name, func(t *testing.T) {
			kv := f.New()
			oracle := map[string]uint64{}
			rng := rand.New(rand.NewSource(5150))
			for op := 0; op < 20000; op++ {
				r := rng.Intn(100)
				var key []byte
				if rng.Intn(2) == 0 {
					key = []byte(fmt.Sprintf("k%06d", rng.Intn(6000)))
				} else {
					key = make([]byte, 1+rng.Intn(12))
					rng.Read(key)
				}
				switch {
				case r < 60:
					v := rng.Uint64()
					kv.Put(key, v)
					oracle[string(key)] = v
				case r < 80:
					wantV, wantOK := oracle[string(key)]
					gotV, gotOK := kv.Get(key)
					if wantOK != gotOK || (wantOK && wantV != gotV) {
						t.Fatalf("%s: op %d: Get mismatch", f.Name, op)
					}
				default:
					_, wantOK := oracle[string(key)]
					if got := kv.Delete(key); got != wantOK {
						t.Fatalf("%s: op %d: Delete mismatch", f.Name, op)
					}
					delete(oracle, string(key))
				}
			}
			if kv.Len() != len(oracle) {
				t.Fatalf("%s: final Len=%d oracle=%d", f.Name, kv.Len(), len(oracle))
			}
		})
	}
}

func TestFactoryRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, f := range All() {
		if names[f.Name] {
			t.Fatalf("duplicate factory name %s", f.Name)
		}
		names[f.Name] = true
		kv := f.New()
		if kv.Name() == "" {
			t.Fatalf("factory %s creates a structure with an empty name", f.Name)
		}
	}
	for _, want := range []string{"Hyperion", "Hyperion_p", "Judy", "HAT", "ART", "ART_C", "HOT", "RB-Tree", "Hash"} {
		if _, ok := ByName(want); !ok {
			t.Fatalf("ByName(%q) failed", want)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName of unknown structure succeeded")
	}
}

func TestBatcherRegistry(t *testing.T) {
	for _, f := range All() {
		kv := f.New()
		b, ok := AsBatcher(kv)
		if ok != f.Batched {
			t.Fatalf("%s: factory reports Batched=%v but instance batcher=%v", f.Name, f.Batched, ok)
		}
		if !ok {
			continue
		}
		// The batched path must agree with the single-op path.
		ops := []hyperion.Op{
			{Kind: hyperion.OpPut, Key: []byte("batch/a"), Value: 10},
			{Kind: hyperion.OpPut, Key: []byte("batch/b"), Value: 20},
			{Kind: hyperion.OpGet, Key: []byte("batch/a")},
			{Kind: hyperion.OpDelete, Key: []byte("batch/b")},
		}
		res := b.ApplyBatch(ops)
		if len(res) != len(ops) || !res[2].Ok || res[2].Value != 10 || !res[3].Ok {
			t.Fatalf("%s: unexpected batch results %+v", f.Name, res)
		}
		got := b.GetBatch([][]byte{[]byte("batch/a"), []byte("batch/b")})
		if !got[0].Ok || got[0].Value != 10 || got[1].Ok {
			t.Fatalf("%s: unexpected GetBatch results %+v", f.Name, got)
		}
		if v, ok := kv.Get([]byte("batch/a")); !ok || v != 10 {
			t.Fatalf("%s: single-op Get disagrees with batch state: %d,%v", f.Name, v, ok)
		}
	}
	if !func() bool { f, _ := ByName("Hyperion"); return f.Batched }() {
		t.Fatal("registry must report Hyperion as batched")
	}
	if func() bool { f, _ := ByName("RB-Tree"); return f.Batched }() {
		t.Fatal("registry must not report RB-Tree as batched")
	}
}

func TestMemoryFootprintOrdering(t *testing.T) {
	// The paper's headline result: for string data sets Hyperion is the most
	// memory-efficient structure, and the RB-tree / hash table are the worst.
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"analysis", "boston", "cambridge", "data", "engine", "frame", "graph", "hyperion", "index", "journal", "kernel", "lattice"}
	var keys [][]byte
	for i := 0; i < 30000; i++ {
		keys = append(keys, []byte(fmt.Sprintf("%s %s %s %d", vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))], 1800+rng.Intn(220))))
	}
	foot := map[string]float64{}
	for _, f := range All() {
		kv := f.New()
		for i, k := range keys {
			kv.Put(k, uint64(i))
		}
		foot[f.Name] = float64(kv.MemoryFootprint()) / float64(kv.Len())
	}
	if foot["Hyperion"] >= foot["Judy"] || foot["Hyperion"] >= foot["ART_C"] || foot["Hyperion"] >= foot["RB-Tree"] || foot["Hyperion"] >= foot["Hash"] || foot["Hyperion"] >= foot["HAT"] {
		t.Fatalf("Hyperion is expected to have the smallest bytes/key on string data: %+v", foot)
	}
	if foot["RB-Tree"] <= foot["Judy"] {
		t.Fatalf("RB-Tree should cost more per key than Judy: %+v", foot)
	}
}
